// Per-rank tool context: owns the rank's simulated device and the enabled
// tool runtimes (rsan/typeart/cusan/must), bound to the rank's thread via a
// thread-local pointer — one tool stack per MPI process, exactly as the
// paper deploys one TSan/MUST/CuSan instance per rank.
#pragma once

#include <memory>
#include <vector>

#include "capi/tool_config.hpp"
#include "cusim/device.hpp"
#include "typeart/runtime.hpp"

namespace capi {

/// Everything a rank's tool stack produced, collected at finalize time — the
/// analog of the tool output + statistics the paper gathers per MPI process.
struct RankResult {
  int rank{-1};
  std::vector<rsan::RaceReport> races;
  std::vector<must::MustReport> must_reports;
  rsan::Counters tsan_counters{};
  cusan::Counters cusan_counters{};
  must::MustCounters must_counters{};
  typeart::RuntimeStats typeart_stats{};
  std::size_t shadow_bytes{};        ///< rsan shadow memory resident at finalize
  std::size_t device_live_bytes{};   ///< simulated device memory still allocated
  std::size_t rss_peak_bytes{};      ///< process peak RSS at finalize (shared across ranks)
  /// Devices whose sticky CUDA error was still latched at finalize (the app
  /// never observed it via cudaGetLastError); drained here so faults stay
  /// accounted even when the app ignores them.
  std::size_t sticky_errors{};
};

class ToolContext {
 public:
  /// `typedb` must outlive the context; pass nullptr to use a private DB with
  /// builtins only.
  /// `device_count` simulated GPUs are created per rank (multi-GPU nodes);
  /// device 0 is current initially (cudaSetDevice analog: set_device).
  ToolContext(int rank, const ToolConfig& config, const cusim::DeviceProfile& profile,
              const typeart::TypeDB* typedb, int device_count = 1);
  ~ToolContext();

  ToolContext(const ToolContext&) = delete;
  ToolContext& operator=(const ToolContext&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] const ToolConfig& config() const { return config_; }
  /// The current device (cudaGetDevice analog).
  [[nodiscard]] cusim::Device& device() { return *devices_[static_cast<std::size_t>(current_device_)]; }
  [[nodiscard]] cusim::Device& device(int ordinal) { return *devices_[static_cast<std::size_t>(ordinal)]; }
  [[nodiscard]] int device_count() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] int current_device() const { return current_device_; }
  /// cudaSetDevice analog; returns false for an invalid ordinal.
  bool set_device(int ordinal);

  /// Enabled tool runtimes; nullptr when the flavor disables them.
  [[nodiscard]] rsan::Runtime* tsan() { return tsan_.get(); }
  [[nodiscard]] typeart::Runtime* types() { return types_.get(); }
  [[nodiscard]] cusan::Runtime* cusan_rt() { return cusan_.get(); }
  [[nodiscard]] must::Runtime* must_rt() { return must_.get(); }

  /// Run finalize-time checks (MUST request-leak detection) and snapshot all
  /// tool state into a RankResult — the MPI_Finalize hook of the tool stack.
  [[nodiscard]] RankResult finalize();

  /// The context bound to the calling thread (nullptr outside a rank).
  [[nodiscard]] static ToolContext* current();

  /// RAII binder installing `ctx` as the calling thread's current context.
  class Binder {
   public:
    explicit Binder(ToolContext& ctx);
    ~Binder();
    Binder(const Binder&) = delete;
    Binder& operator=(const Binder&) = delete;

   private:
    ToolContext* previous_;
  };

 private:
  int rank_;
  ToolConfig config_;
  std::unique_ptr<typeart::TypeDB> owned_typedb_;  ///< when caller passed nullptr
  std::vector<std::unique_ptr<cusim::Device>> devices_;
  int current_device_{0};
  std::unique_ptr<rsan::Runtime> tsan_;
  std::unique_ptr<typeart::Runtime> types_;
  std::unique_ptr<cusan::Runtime> cusan_;
  std::unique_ptr<must::Runtime> must_;
};

}  // namespace capi
