// Session driver: the equivalent of `mpirun -np N <flavored binary>` in the
// paper's harness. Spawns N ranks, builds each rank's tool stack, binds it
// to the rank thread, runs the application body and collects per-rank tool
// results.
#pragma once

#include <functional>
#include <vector>

#include "capi/context.hpp"
#include "capi/tool_config.hpp"
#include "cusim/profile.hpp"
#include "mpisim/world.hpp"

namespace capi {

struct SessionConfig {
  int ranks = 2;
  /// Simulated GPUs per rank (cudaSetDevice switches between them).
  int devices_per_rank = 1;
  ToolConfig tools{};
  cusim::DeviceProfile device_profile{};
  /// Shared type database (struct layouts registered up front). nullptr:
  /// each rank uses a builtin-only database.
  const typeart::TypeDB* typedb = nullptr;
  /// MPI progress-watchdog timeout for this session. Zero keeps the world's
  /// default (CUSAN_MPI_WATCHDOG_MS, or 1s); negative disables the watchdog.
  std::chrono::milliseconds watchdog_timeout{0};
};

/// What an application's per-rank body receives.
struct RankEnv {
  mpisim::Comm comm;
  ToolContext& tools;

  [[nodiscard]] int rank() const { return comm.rank(); }
  [[nodiscard]] int size() const { return comm.size(); }
};

using RankMain = std::function<void(RankEnv&)>;

/// World size for harness-driven sessions: the CUSAN_RANKS environment
/// variable (clamped to [2, 64]), or 2 when unset/invalid. Lets the whole
/// testsuite / fault sweep scale to wider worlds (CI runs it at 8) without
/// touching every call site.
[[nodiscard]] int default_ranks();

/// Run `rank_main` on every rank under the configured tool flavor and return
/// each rank's tool results (index == rank).
[[nodiscard]] std::vector<RankResult> run_session(const SessionConfig& config,
                                                  const RankMain& rank_main);

/// Convenience for the common "flavor + ranks" case.
[[nodiscard]] std::vector<RankResult> run_flavored(Flavor flavor, int ranks,
                                                   const RankMain& rank_main);

/// Sum of races across ranks (the harness's pass/fail signal).
[[nodiscard]] std::size_t total_races(const std::vector<RankResult>& results);

}  // namespace capi
