// The checked CUDA API: what application CUDA calls compile to after the
// CuSan + TypeART passes ran (paper Fig. 7/9). Every wrapper forwards to the
// simulated device and, when the flavor enables them, issues the exact
// callbacks the compiler-inserted instrumentation would issue:
//   * TypeART alloc/free callbacks with compiler-derived element types,
//   * CuSan callbacks before kernel launches / memory ops and around
//     synchronization calls.
// With all tools disabled the wrappers are plain pass-throughs (vanilla).
#pragma once

#include <initializer_list>

#include "capi/context.hpp"
#include "kir/registry.hpp"

namespace capi::cuda {

namespace detail {

[[nodiscard]] inline ToolContext& ctx() {
  ToolContext* current = ToolContext::current();
  CUSAN_ASSERT_MSG(current != nullptr, "capi used outside a bound rank context");
  return *current;
}

inline void on_alloc(void* ptr, typeart::TypeId type, std::size_t count,
                     typeart::AllocKind kind) {
  if (auto* types = ctx().types(); types != nullptr && ptr != nullptr) {
    (void)types->on_alloc(ptr, type, count, kind);
  }
}

}  // namespace detail

// -- Memory ---------------------------------------------------------------------

/// cudaMalloc with compiler-derived element type (TypeART extension §IV-C).
template <typename T>
cusim::Error malloc_device(T** out, std::size_t count) {
  auto& c = detail::ctx();
  const cusim::Error err =
      c.device().malloc_device(reinterpret_cast<void**>(out), count * sizeof(T));
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(*out, typeart::builtin_type_id<T>(), count, typeart::AllocKind::kDevice);
  }
  return err;
}

/// cudaMallocManaged.
template <typename T>
cusim::Error malloc_managed(T** out, std::size_t count) {
  auto& c = detail::ctx();
  const cusim::Error err =
      c.device().malloc_managed(reinterpret_cast<void**>(out), count * sizeof(T));
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(*out, typeart::builtin_type_id<T>(), count, typeart::AllocKind::kManaged);
  }
  return err;
}

/// cudaMallocHost / cudaHostAlloc (pinned).
template <typename T>
cusim::Error malloc_host(T** out, std::size_t count) {
  auto& c = detail::ctx();
  const cusim::Error err = c.device().malloc_host(reinterpret_cast<void**>(out), count * sizeof(T));
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(*out, typeart::builtin_type_id<T>(), count, typeart::AllocKind::kPinnedHost);
  }
  return err;
}

/// cudaMallocAsync: stream-ordered allocation.
template <typename T>
cusim::Error malloc_async(T** out, std::size_t count, cusim::Stream* stream) {
  auto& c = detail::ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  const cusim::Error err =
      c.device().malloc_async(reinterpret_cast<void**>(out), count * sizeof(T), stream);
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(*out, typeart::builtin_type_id<T>(), count, typeart::AllocKind::kDevice);
  }
  return err;
}

/// cudaFreeAsync: frees once prior work on `stream` completed.
cusim::Error free_async(void* ptr, cusim::Stream* stream);

/// Struct-typed variants for user-registered layouts.
cusim::Error malloc_device_typed(void** out, typeart::TypeId type, std::size_t count);
cusim::Error malloc_managed_typed(void** out, typeart::TypeId type, std::size_t count);

/// cudaFree (device or managed memory).
cusim::Error free(void* ptr);
/// cudaFreeHost.
cusim::Error free_host(void* ptr);

/// Register a plain (pageable) host allocation with TypeART, modelling the
/// heap/stack instrumentation the TypeART pass inserts for host code.
template <typename T>
void register_host_buffer(T* ptr, std::size_t count) {
  detail::on_alloc(ptr, typeart::builtin_type_id<T>(), count, typeart::AllocKind::kHostHeap);
}

void unregister_host_buffer(void* ptr);

/// cudaHostRegister: pin an existing host region (UVA reports pinned host
/// afterwards, changing implicit synchronization behaviour) and register it
/// with TypeART.
template <typename T>
cusim::Error host_register(T* ptr, std::size_t count) {
  auto& c = detail::ctx();
  const cusim::Error err = c.device().host_register(ptr, count * sizeof(T));
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(ptr, typeart::builtin_type_id<T>(), count, typeart::AllocKind::kPinnedHost);
  }
  return err;
}

/// cudaHostUnregister.
cusim::Error host_unregister(void* ptr);

// -- Data movement ----------------------------------------------------------------

cusim::Error memcpy(void* dst, const void* src, std::size_t bytes,
                    cusim::MemcpyDir dir = cusim::MemcpyDir::kDefault);
cusim::Error memcpy_async(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir,
                          cusim::Stream* stream);
cusim::Error memset(void* dst, int value, std::size_t bytes);
cusim::Error memset_async(void* dst, int value, std::size_t bytes, cusim::Stream* stream);
cusim::Error memcpy_2d(void* dst, std::size_t dpitch, const void* src, std::size_t spitch,
                       std::size_t width, std::size_t height,
                       cusim::MemcpyDir dir = cusim::MemcpyDir::kDefault);
cusim::Error memcpy_2d_async(void* dst, std::size_t dpitch, const void* src, std::size_t spitch,
                             std::size_t width, std::size_t height, cusim::MemcpyDir dir,
                             cusim::Stream* stream);
/// cudaMemPrefetchAsync (managed memory only).
cusim::Error mem_prefetch_async(const void* ptr, std::size_t bytes, cusim::Stream* stream);
/// cudaLaunchHostFunc.
cusim::Error launch_host_func(cusim::Stream* stream, std::function<void()> fn);

// -- Streams / events / synchronization ------------------------------------------------

cusim::Error stream_create(cusim::Stream** out,
                           cusim::StreamFlags flags = cusim::StreamFlags::kDefault);
cusim::Error stream_destroy(cusim::Stream* stream);
cusim::Error stream_synchronize(cusim::Stream* stream);
cusim::Error stream_query(cusim::Stream* stream);
cusim::Error device_synchronize();
cusim::Error event_create(cusim::Event** out);
cusim::Error event_destroy(cusim::Event* event);
cusim::Error event_record(cusim::Event* event, cusim::Stream* stream);
cusim::Error event_synchronize(cusim::Event* event);
cusim::Error event_query(cusim::Event* event);
cusim::Error stream_wait_event(cusim::Stream* stream, cusim::Event* event);

/// The rank's legacy default stream (of the current device).
[[nodiscard]] cusim::Stream* default_stream();

/// cudaGetLastError: returns and clears the current device's sticky error.
cusim::Error get_last_error();
/// cudaPeekAtLastError: returns the sticky error without clearing it.
[[nodiscard]] cusim::Error peek_at_last_error();

/// cudaSetDevice / cudaGetDevice / cudaGetDeviceCount.
cusim::Error set_device(int ordinal);
[[nodiscard]] int get_device();
[[nodiscard]] int get_device_count();

// -- Kernel launch -----------------------------------------------------------------------

/// Launch a kernel described by its kir registry entry (which carries the
/// statically derived per-argument access modes). `ptr_args[i]` must
/// correspond to the kernel IR's parameter i (pass nullptr for non-pointer
/// parameters). `body` performs the actual computation.
cusim::Error launch(const kir::KernelInfo& info, cusim::LaunchDims dims, cusim::Stream* stream,
                    std::initializer_list<const void*> ptr_args, cusim::KernelBody body);

}  // namespace capi::cuda
