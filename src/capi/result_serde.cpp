#include "capi/result_serde.hpp"

#include <cstring>
#include <string>
#include <type_traits>

namespace capi::serde {

namespace {

constexpr std::uint32_t kMagic = 0x63525331;  // "cRS1"

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  /// Fixed-layout structs travel as size-prefixed raw bytes; the size check
  /// at decode catches a parent/child layout mismatch (impossible for a
  /// fork, cheap to keep honest).
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(sizeof(T));
    raw(&v, sizeof(T));
  }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  std::vector<std::byte> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* v) { return raw(v, sizeof *v); }
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool str(std::string* s) {
    std::uint64_t n = 0;
    if (!u64(&n) || n > bytes_.size() - pos_) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = 0;
    if (!u64(&n) || n != sizeof(T)) {
      return false;
    }
    return raw(v, sizeof(T));
  }

 private:
  bool raw(void* out, std::size_t n) {
    if (bytes_.size() - pos_ < n) {
      return false;
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::byte> bytes_;
  std::size_t pos_{0};
};

void write_access(Writer& w, const rsan::RaceAccess& a) {
  w.u32(a.ctx);
  w.u8(static_cast<std::uint8_t>(a.kind));
  w.str(a.ctx_name);
  w.u8(a.is_write ? 1 : 0);
  w.u64(a.clock);
  w.str(a.label);
}

bool read_access(Reader& r, rsan::RaceAccess* a) {
  std::uint8_t kind = 0;
  std::uint8_t is_write = 0;
  const bool ok = r.u32(&a->ctx) && r.u8(&kind) && r.str(&a->ctx_name) && r.u8(&is_write) &&
                  r.u64(&a->clock) && r.str(&a->label);
  a->kind = static_cast<rsan::CtxKind>(kind);
  a->is_write = is_write != 0;
  return ok;
}

}  // namespace

std::vector<std::byte> encode(const RankPayload& payload) {
  Writer w;
  w.u32(kMagic);
  const RankResult& res = payload.result;
  w.i32(res.rank);
  w.u64(res.races.size());
  for (const rsan::RaceReport& race : res.races) {
    w.u64(static_cast<std::uint64_t>(race.addr));
    w.u64(race.access_size);
    write_access(w, race.current);
    write_access(w, race.previous);
  }
  w.u64(res.must_reports.size());
  for (const must::MustReport& report : res.must_reports) {
    w.u8(static_cast<std::uint8_t>(report.kind));
    w.str(report.mpi_call);
    w.str(report.detail);
  }
  w.pod(res.tsan_counters);
  w.pod(res.cusan_counters);
  w.pod(res.must_counters);
  w.pod(res.typeart_stats);
  w.u64(res.shadow_bytes);
  w.u64(res.device_live_bytes);
  w.u64(res.rss_peak_bytes);
  w.u64(res.sticky_errors);

  w.u64(payload.metric_deltas.size());
  for (const auto& [name, value] : payload.metric_deltas) {
    w.str(name);
    w.u64(value);
  }
  w.u64(payload.diagnostics.size());
  for (const obs::Diagnostic& d : payload.diagnostics) {
    w.str(d.id);
    w.u8(static_cast<std::uint8_t>(d.severity));
    w.i32(d.rank);
    w.str(d.message);
    w.u64(d.ts_ns);
  }
  w.str(payload.sched_trace);
  w.pod(payload.sched_stats);
  w.u8(payload.sched_divergence.has_value() ? 1 : 0);
  if (payload.sched_divergence.has_value()) {
    w.pod(*payload.sched_divergence);
  }
  return w.take();
}

bool decode(std::span<const std::byte> bytes, RankPayload* out) {
  Reader r(bytes);
  std::uint32_t magic = 0;
  if (!r.u32(&magic) || magic != kMagic) {
    return false;
  }
  RankResult& res = out->result;
  std::int32_t rank = -1;
  if (!r.i32(&rank)) {
    return false;
  }
  res.rank = rank;
  std::uint64_t count = 0;
  if (!r.u64(&count)) {
    return false;
  }
  res.races.resize(count);
  for (rsan::RaceReport& race : res.races) {
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
    if (!r.u64(&addr) || !r.u64(&size) || !read_access(r, &race.current) ||
        !read_access(r, &race.previous)) {
      return false;
    }
    race.addr = static_cast<std::uintptr_t>(addr);
    race.access_size = static_cast<std::size_t>(size);
  }
  if (!r.u64(&count)) {
    return false;
  }
  res.must_reports.resize(count);
  for (must::MustReport& report : res.must_reports) {
    std::uint8_t kind = 0;
    if (!r.u8(&kind) || !r.str(&report.mpi_call) || !r.str(&report.detail)) {
      return false;
    }
    report.kind = static_cast<must::ReportKind>(kind);
  }
  std::uint64_t shadow = 0;
  std::uint64_t device_live = 0;
  std::uint64_t rss = 0;
  std::uint64_t sticky = 0;
  if (!r.pod(&res.tsan_counters) || !r.pod(&res.cusan_counters) ||
      !r.pod(&res.must_counters) || !r.pod(&res.typeart_stats) || !r.u64(&shadow) ||
      !r.u64(&device_live) || !r.u64(&rss) || !r.u64(&sticky)) {
    return false;
  }
  res.shadow_bytes = static_cast<std::size_t>(shadow);
  res.device_live_bytes = static_cast<std::size_t>(device_live);
  res.rss_peak_bytes = static_cast<std::size_t>(rss);
  res.sticky_errors = static_cast<std::size_t>(sticky);

  if (!r.u64(&count)) {
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!r.str(&name) || !r.u64(&value)) {
      return false;
    }
    out->metric_deltas.emplace(std::move(name), value);
  }
  if (!r.u64(&count)) {
    return false;
  }
  out->diagnostics.resize(count);
  for (obs::Diagnostic& d : out->diagnostics) {
    std::uint8_t severity = 0;
    std::int32_t drank = -1;
    if (!r.str(&d.id) || !r.u8(&severity) || !r.i32(&drank) || !r.str(&d.message) ||
        !r.u64(&d.ts_ns)) {
      return false;
    }
    d.severity = static_cast<obs::Severity>(severity);
    d.rank = drank;
  }
  std::uint8_t has_divergence = 0;
  if (!r.str(&out->sched_trace) || !r.pod(&out->sched_stats) || !r.u8(&has_divergence)) {
    return false;
  }
  if (has_divergence != 0) {
    schedsim::Divergence divergence;
    if (!r.pod(&divergence)) {
      return false;
    }
    out->sched_divergence = divergence;
  }
  return true;
}

}  // namespace capi::serde
