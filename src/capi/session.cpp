#include "capi/session.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "capi/result_serde.hpp"
#include "faultsim/injector.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/ring.hpp"
#include "schedsim/controller.hpp"
#include "schedsim/execution_graph.hpp"

namespace capi {

namespace {

/// Process-wide observability export config, parsed from CUSAN_TRACE /
/// CUSAN_METRICS on first session start (tracing is armed at the same time).
const obs::ExportConfig& obs_config() {
  static const obs::ExportConfig config = [] {
    std::string error;
    obs::ExportConfig parsed = obs::export_config_from_env(&error);
    if (!error.empty()) {
      std::fprintf(stderr, "cusan: %s\n", error.c_str());
    }
    if (parsed.trace_enabled) {
      // The env arms tracing but never owns the flag: a harness (or test)
      // that called set_tracing_enabled(true) itself keeps its timeline.
      obs::set_tracing_enabled(true);
    }
    return parsed;
  }();
  return config;
}

/// Post-session export: the trace covers the rings as recorded by the most
/// recent session (reset at each session start), the metrics snapshot is
/// cumulative across sessions.
void export_observability(const obs::ExportConfig& config) {
  std::string error;
  if (config.trace_enabled && !config.trace_path.empty()) {
    if (!obs::write_file(config.trace_path, obs::export_chrome_trace(), &error)) {
      std::fprintf(stderr, "cusan: trace export failed: %s\n", error.c_str());
    }
  }
  if (!config.metrics_path.empty()) {
    const auto snapshot = obs::MetricsRegistry::instance().snapshot();
    if (!obs::write_file(config.metrics_path, obs::MetricsRegistry::to_json(snapshot), &error)) {
      std::fprintf(stderr, "cusan: metrics export failed: %s\n", error.c_str());
    }
  }
}

}  // namespace

int default_ranks() {
  // Parsed exactly once per process (thread-safe magic static): this is on
  // the per-session hot path of sweeps and the svc executor, and re-reading
  // the environment per call would also let a mid-run setenv change world
  // sizes between scenarios. tests/test_capi.cpp pins the cached semantics.
  static const int ranks = [] {
    const char* env = std::getenv("CUSAN_RANKS");
    if (env == nullptr || *env == '\0') {
      return 2;
    }
    const int parsed = std::atoi(env);
    if (parsed < 2) {
      return 2;
    }
    return parsed > 64 ? 64 : parsed;
  }();
  return ranks;
}

std::vector<RankResult> run_session(const SessionConfig& config, const RankMain& rank_main) {
  // Arm the fault injector from CUSAN_FAULT_PLAN once per process; sessions
  // with an explicit programmatic plan (Injector::load) are unaffected
  // because an unset/empty env keeps the current state. The env targets the
  // *global* instances explicitly: a session-scoped run (svc executor) gets
  // its plan/schedule from its svc::SessionSpec, not the process environment.
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    (void)faultsim::Injector::global().load_env();
    std::string sched_error;
    if (!schedsim::Controller::global().load_env(&sched_error)) {
      std::fprintf(stderr, "cusan: %s\n", sched_error.c_str());
    }
  });
  // Session-scoped runs skip the process-level observability plumbing: the
  // event rings stay process-global (tracing under the executor is a
  // process-level timeline) and svc::Session collects metrics/diagnostics
  // itself instead of the file exports.
  const bool scoped = obs::MetricsRegistry::is_scoped();
  schedsim::Controller::instance().begin_session();
  // A `graph[:<path>]` schedule clause records the execution graph for this
  // session (thread backend: proc-backend children are separate processes,
  // so only parent-side decisions would land in it). Explorer-driven runs
  // arm the recorder themselves and leave config().graph unset here.
  const schedsim::Config sched_config = schedsim::Controller::instance().config();
  const bool session_graph = sched_config.graph && !schedsim::GraphRecorder::enabled();
  if (session_graph) {
    schedsim::GraphRecorder& recorder = schedsim::GraphRecorder::instance();
    recorder.begin_run();
    recorder.set_strategy(schedsim::Controller::instance().strategy_string());
    recorder.arm(true);
  }
  const obs::ExportConfig* obs_cfg = nullptr;
  if (!scoped) {
    obs_cfg = &obs_config();
    if (obs_cfg->trace_enabled) {
      // Each session records a fresh timeline; with multiple sessions per
      // process (the testsuite) the exported trace is the last session's.
      obs::reset_rings();
    }
  }

  mpisim::World world(config.ranks);
  if (config.watchdog_timeout.count() > 0) {
    world.set_watchdog_timeout(config.watchdog_timeout);
  } else if (config.watchdog_timeout.count() < 0) {
    world.set_watchdog_timeout(std::chrono::milliseconds(0));
  }
  const bool proc = world.backend() == mpisim::Backend::kProc;
  std::vector<RankResult> results(static_cast<std::size_t>(config.ranks));
  world.run([&](mpisim::Comm comm) {
    // Proc backend: the rank is a forked process, so anything its tool stack
    // produces must be shipped back explicitly. Baseline the fork-inherited
    // obs state first; the deltas travel in the result blob.
    obs::MetricsSnapshot metrics_base;
    std::size_t diag_base = 0;
    if (proc) {
      metrics_base = obs::MetricsRegistry::instance().snapshot();
      diag_base = obs::diagnostics().size();
    }
    ToolContext ctx(comm.rank(), config.tools, config.device_profile, config.typedb,
                    config.devices_per_rank);
    ToolContext::Binder binder(ctx);
    RankEnv env{comm, ctx};
    rank_main(env);
    if (!proc) {
      // Collect results while the context is still alive; no barrier needed
      // since each rank only writes its own slot.
      results[static_cast<std::size_t>(comm.rank())] = ctx.finalize();
      return;
    }
    serde::RankPayload payload;
    payload.result = ctx.finalize();
    payload.metric_deltas = obs::MetricsRegistry::diff(
        obs::MetricsRegistry::instance().snapshot(), metrics_base);
    const auto all_diags = obs::diagnostics();
    payload.diagnostics.assign(
        all_diags.begin() + static_cast<std::ptrdiff_t>(
                                std::min(diag_base, all_diags.size())),
        all_diags.end());
    auto& controller = schedsim::Controller::instance();
    if (schedsim::Controller::armed()) {
      payload.sched_trace = controller.take_trace();
      payload.sched_stats = controller.stats();
      payload.sched_divergence = controller.divergence();
    }
    mpisim::publish_result(comm, serde::encode(payload));
  });
  if (proc) {
    for (int r = 0; r < config.ranks; ++r) {
      serde::RankPayload payload;
      const std::vector<std::byte>& blob = world.rank_result(r);
      if (blob.empty() || !serde::decode(blob, &payload)) {
        // The rank died (or was poisoned out) before finalize: its tool
        // results are gone; the supervisor's failure report and the
        // survivors' MUST reports carry the verdict.
        results[static_cast<std::size_t>(r)].rank = r;
        continue;
      }
      for (const auto& [name, delta] : payload.metric_deltas) {
        obs::metric(name).add(delta);
      }
      for (obs::Diagnostic& diagnostic : payload.diagnostics) {
        obs::reemit_imported_diagnostic(std::move(diagnostic));
      }
      if (schedsim::Controller::armed()) {
        (void)schedsim::Controller::instance().absorb_child(
            payload.sched_trace, payload.sched_stats, payload.sched_divergence);
      }
      results[static_cast<std::size_t>(r)] = std::move(payload.result);
    }
  }
  schedsim::Controller::instance().end_session();
  if (session_graph) {
    schedsim::GraphRecorder& recorder = schedsim::GraphRecorder::instance();
    recorder.arm(false);
    if (!sched_config.graph_path.empty()) {
      // Like the Perfetto trace and the record path: the exported file is
      // the last session's.
      std::string error;
      if (!obs::write_file(sched_config.graph_path,
                           schedsim::serialize_graph(recorder.snapshot()), &error)) {
        std::fprintf(stderr, "cusan: execution graph export failed: %s\n", error.c_str());
      }
    }
  }
  if (!scoped) {
    export_observability(*obs_cfg);
  }
  return results;
}

std::vector<RankResult> run_flavored(Flavor flavor, int ranks, const RankMain& rank_main) {
  SessionConfig config;
  config.ranks = ranks;
  config.tools = make_tool_config(flavor);
  return run_session(config, rank_main);
}

std::size_t total_races(const std::vector<RankResult>& results) {
  std::size_t total = 0;
  for (const auto& result : results) {
    total += result.tsan_counters.races_detected;
  }
  return total;
}

}  // namespace capi
