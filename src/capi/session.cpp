#include "capi/session.hpp"

#include <cstdlib>
#include <mutex>

#include "faultsim/injector.hpp"

namespace capi {

int default_ranks() {
  static const int ranks = [] {
    const char* env = std::getenv("CUSAN_RANKS");
    if (env == nullptr || *env == '\0') {
      return 2;
    }
    const int parsed = std::atoi(env);
    if (parsed < 2) {
      return 2;
    }
    return parsed > 64 ? 64 : parsed;
  }();
  return ranks;
}

std::vector<RankResult> run_session(const SessionConfig& config, const RankMain& rank_main) {
  // Arm the fault injector from CUSAN_FAULT_PLAN once per process; sessions
  // with an explicit programmatic plan (Injector::load) are unaffected
  // because an unset/empty env keeps the current state.
  static std::once_flag env_once;
  std::call_once(env_once, [] { (void)faultsim::Injector::instance().load_env(); });

  mpisim::World world(config.ranks);
  if (config.watchdog_timeout.count() > 0) {
    world.set_watchdog_timeout(config.watchdog_timeout);
  } else if (config.watchdog_timeout.count() < 0) {
    world.set_watchdog_timeout(std::chrono::milliseconds(0));
  }
  std::vector<RankResult> results(static_cast<std::size_t>(config.ranks));
  world.run([&](mpisim::Comm comm) {
    ToolContext ctx(comm.rank(), config.tools, config.device_profile, config.typedb,
                    config.devices_per_rank);
    ToolContext::Binder binder(ctx);
    RankEnv env{comm, ctx};
    rank_main(env);
    // Collect results while the context is still alive; the barrier below is
    // not needed since each rank only writes its own slot.
    results[static_cast<std::size_t>(comm.rank())] = ctx.finalize();
  });
  return results;
}

std::vector<RankResult> run_flavored(Flavor flavor, int ranks, const RankMain& rank_main) {
  SessionConfig config;
  config.ranks = ranks;
  config.tools = make_tool_config(flavor);
  return run_session(config, rank_main);
}

std::size_t total_races(const std::vector<RankResult>& results) {
  std::size_t total = 0;
  for (const auto& result : results) {
    total += result.tsan_counters.races_detected;
  }
  return total;
}

}  // namespace capi
