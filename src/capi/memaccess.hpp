// Host memory-access instrumentation — what the TSan compiler pass emits for
// plain loads/stores in user code. Applications use these accessors on
// host-visible shared buffers (MPI buffers, managed memory); with TSan
// disabled they compile down to the raw access.
#pragma once

#include "capi/context.hpp"

namespace capi {

namespace detail {

[[nodiscard]] inline rsan::Runtime* tsan() {
  ToolContext* ctx = ToolContext::current();
  return ctx != nullptr ? ctx->tsan() : nullptr;
}

}  // namespace detail

/// Instrumented scalar load.
template <typename T>
[[nodiscard]] inline T checked_load(const T* ptr) {
  if (auto* rt = detail::tsan()) {
    rt->plain_read(ptr, sizeof(T));
  }
  return *ptr;
}

/// Instrumented scalar store.
template <typename T>
inline void checked_store(T* ptr, T value) {
  if (auto* rt = detail::tsan()) {
    rt->plain_write(ptr, sizeof(T));
  }
  *ptr = value;
}

/// Bulk access annotations for host loops over shared buffers. The compiler
/// pass instruments each access individually; annotating the loop's range
/// once is the standard hand-optimization with identical detection power.
inline void annotate_host_reads(const void* ptr, std::size_t bytes, const char* label = nullptr) {
  if (auto* rt = detail::tsan()) {
    rt->read_range(ptr, bytes, label);
  }
}

inline void annotate_host_writes(void* ptr, std::size_t bytes, const char* label = nullptr) {
  if (auto* rt = detail::tsan()) {
    rt->write_range(ptr, bytes, label);
  }
}

}  // namespace capi
