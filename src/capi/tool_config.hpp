// Tool flavor selection. The paper builds separate binaries per flavor
// (vanilla / TSan / MUST / CuSan / MUST & CuSan); here one binary selects the
// flavor at runtime — the wrappers in capi compile to plain pass-through
// calls when a tool is disabled.
#pragma once

#include "cusan/runtime.hpp"
#include "must/runtime.hpp"
#include "rsan/runtime.hpp"

namespace capi {

/// Which tools are active for a run. Invariants (enforced by ToolContext):
/// must/cusan require tsan; cusan requires typeart.
struct ToolConfig {
  bool tsan = false;
  bool must = false;
  bool cusan = false;
  bool typeart = false;

  rsan::RuntimeConfig rsan_config{};
  cusan::Config cusan_config{};
  must::Config must_config{};
};

/// The paper's five evaluation flavors.
enum class Flavor { kVanilla, kTsan, kMust, kCusan, kMustCusan };

[[nodiscard]] constexpr const char* to_string(Flavor f) {
  switch (f) {
    case Flavor::kVanilla:
      return "vanilla";
    case Flavor::kTsan:
      return "TSan";
    case Flavor::kMust:
      return "MUST";
    case Flavor::kCusan:
      return "CuSan";
    case Flavor::kMustCusan:
      return "MUST & CuSan";
  }
  return "?";
}

[[nodiscard]] inline ToolConfig make_tool_config(Flavor flavor) {
  ToolConfig config;
  switch (flavor) {
    case Flavor::kVanilla:
      break;
    case Flavor::kTsan:
      config.tsan = true;
      break;
    case Flavor::kMust:
      config.tsan = true;
      config.must = true;
      break;
    case Flavor::kCusan:
      config.tsan = true;
      config.cusan = true;
      config.typeart = true;
      break;
    case Flavor::kMustCusan:
      config.tsan = true;
      config.must = true;
      config.cusan = true;
      config.typeart = true;
      break;
  }
  return config;
}

inline constexpr Flavor kAllFlavors[] = {Flavor::kVanilla, Flavor::kTsan, Flavor::kMust,
                                         Flavor::kCusan, Flavor::kMustCusan};

}  // namespace capi
