#include "capi/mpi.hpp"

#include <numeric>
#include <vector>

#include "schedsim/controller.hpp"

namespace capi::mpi {
namespace {

[[nodiscard]] must::Runtime* must_rt() {
  ToolContext* ctx = ToolContext::current();
  return ctx != nullptr ? ctx->must_rt() : nullptr;
}

/// Deliver a world-level verdict to MUST (one structured report per rank
/// runtime): the watchdog's deadlock declaration, or — proc backend — the
/// supervisor's rank-failure poisoning. Returns `err` so callers can
/// tail-call through it.
mpisim::MpiError note_deadlock(mpisim::Comm& comm, mpisim::MpiError err) {
  if (err == mpisim::MpiError::kDeadlock) {
    if (auto* m = must_rt()) {
      m->on_deadlock(comm.rank(), comm.deadlock_report());
    }
  } else if (err == mpisim::MpiError::kRankFailed) {
    if (auto* m = must_rt()) {
      m->on_rank_failure(comm.rank(), comm.failure_summary());
    }
  }
  return err;
}

}  // namespace

mpisim::MpiError send(mpisim::Comm& comm, const void* buf, std::size_t count,
                      const mpisim::Datatype& type, int dest, int tag) {
  if (auto* m = must_rt()) {
    m->on_send(buf, count, type);
  }
  return note_deadlock(comm, comm.send(buf, count, type, dest, tag));
}

mpisim::MpiError recv(mpisim::Comm& comm, void* buf, std::size_t count,
                      const mpisim::Datatype& type, int source, int tag, mpisim::Status* status) {
  mpisim::Status local;
  const mpisim::MpiError err = comm.recv(buf, count, type, source, tag, &local);
  // On a declared deadlock nothing was received: publishing the buffer-write
  // annotation would fabricate accesses that never happened.
  if (err != mpisim::MpiError::kDeadlock) {
    if (auto* m = must_rt()) {
      m->on_recv(buf, count, type);
      m->on_receive_status("MPI_Recv", local);
    }
  }
  if (status != nullptr) {
    *status = local;
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError isend(mpisim::Comm& comm, const void* buf, std::size_t count,
                       const mpisim::Datatype& type, int dest, int tag,
                       mpisim::Request** request) {
  const mpisim::MpiError err = comm.isend(buf, count, type, dest, tag, request);
  if (err == mpisim::MpiError::kSuccess) {
    if (auto* m = must_rt()) {
      m->on_isend(buf, count, type, *request);
    }
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError irecv(mpisim::Comm& comm, void* buf, std::size_t count,
                       const mpisim::Datatype& type, int source, int tag,
                       mpisim::Request** request) {
  const mpisim::MpiError err = comm.irecv(buf, count, type, source, tag, request);
  if (err == mpisim::MpiError::kSuccess) {
    if (auto* m = must_rt()) {
      m->on_irecv(buf, count, type, *request);
    }
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError wait(mpisim::Comm& comm, mpisim::Request** request, mpisim::Status* status) {
  // Keep the handle value for the MUST lookup: mpisim frees the request on
  // completion, but MUST only uses the pointer as a map key.
  const mpisim::Request* handle = request != nullptr ? *request : nullptr;
  mpisim::Status local;
  const mpisim::MpiError err = comm.wait(request, &local);
  // kDeadlock means the wait was abandoned: the request did not complete and
  // its fiber must stay open (MUST later reports it as a leak).
  if (handle != nullptr && err != mpisim::MpiError::kDeadlock) {
    if (auto* m = must_rt()) {
      m->on_complete(handle);
      m->on_receive_status("MPI_Wait", local);
    }
  }
  if (status != nullptr) {
    *status = local;
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError test(mpisim::Comm& comm, mpisim::Request** request, bool* completed,
                      mpisim::Status* status) {
  const mpisim::Request* handle = request != nullptr ? *request : nullptr;
  bool done = false;
  mpisim::Status local;
  const mpisim::MpiError err = comm.test(request, &done, &local);
  if (completed != nullptr) {
    *completed = done;
  }
  if (done && handle != nullptr) {
    if (auto* m = must_rt()) {
      m->on_complete(handle);
      m->on_receive_status("MPI_Test", local);
    }
  }
  if (status != nullptr) {
    *status = local;
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError waitall(mpisim::Comm& comm, std::span<mpisim::Request*> requests) {
  // The order the requests are waited on is not observable through MPI (all
  // must complete before the call returns) but *is* observable through MUST:
  // each wait() closes the request's fiber via on_complete, so the processing
  // order is the fiber-join order. Under the schedule controller, permute it.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (schedsim::Controller::armed() && requests.size() > 1) {
    auto& controller = schedsim::Controller::instance();
    const schedsim::ActorId actor{comm.rank(), 'h', 0};
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const int pick = controller.choose(schedsim::Site::kWaitallOrder, actor,
                                         static_cast<int>(order.size() - i), 0);
      std::swap(order[i], order[i + static_cast<std::size_t>(pick)]);
    }
  }
  mpisim::MpiError first_error = mpisim::MpiError::kSuccess;
  for (const std::size_t idx : order) {
    mpisim::Request*& req = requests[idx];
    if (req == nullptr) {
      continue;
    }
    const mpisim::MpiError err = wait(comm, &req, nullptr);
    if (err != mpisim::MpiError::kSuccess && first_error == mpisim::MpiError::kSuccess) {
      first_error = err;
    }
  }
  return first_error;
}

mpisim::MpiError waitany(mpisim::Comm& comm, std::span<mpisim::Request*> requests, int* index,
                         mpisim::Status* status) {
  // Snapshot the handles: the completed one is freed and nulled by mpisim,
  // but MUST needs its value as the fiber-map key.
  std::vector<const mpisim::Request*> handles(requests.begin(), requests.end());
  int completed_index = -1;
  mpisim::Status local;
  const mpisim::MpiError err = comm.waitany(requests, &completed_index, &local);
  if (index != nullptr) {
    *index = completed_index;
  }
  if (completed_index >= 0 && handles[static_cast<std::size_t>(completed_index)] != nullptr) {
    if (auto* m = must_rt()) {
      m->on_complete(handles[static_cast<std::size_t>(completed_index)]);
      m->on_receive_status("MPI_Waitany", local);
    }
  }
  if (status != nullptr) {
    *status = local;
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError probe(mpisim::Comm& comm, int source, int tag, mpisim::Status* status) {
  if (auto* m = must_rt()) {
    m->on_probe();
  }
  return note_deadlock(comm, comm.probe(source, tag, status));
}

mpisim::MpiError iprobe(mpisim::Comm& comm, int source, int tag, bool* flag,
                        mpisim::Status* status) {
  if (auto* m = must_rt()) {
    m->on_probe();
  }
  return comm.iprobe(source, tag, flag, status);
}

mpisim::MpiError sendrecv(mpisim::Comm& comm, const void* sendbuf, std::size_t sendcount,
                          const mpisim::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                          std::size_t recvcount, const mpisim::Datatype& recvtype, int source,
                          int recvtag, mpisim::Status* status) {
  if (auto* m = must_rt()) {
    m->on_send(sendbuf, sendcount, sendtype);
  }
  mpisim::Status local;
  const mpisim::MpiError err = comm.sendrecv(sendbuf, sendcount, sendtype, dest, sendtag, recvbuf,
                                             recvcount, recvtype, source, recvtag, &local);
  if (err != mpisim::MpiError::kDeadlock) {
    if (auto* m = must_rt()) {
      m->on_recv(recvbuf, recvcount, recvtype);
      m->on_receive_status("MPI_Sendrecv", local);
    }
  }
  if (status != nullptr) {
    *status = local;
  }
  return note_deadlock(comm, err);
}

mpisim::MpiError comm_dup(mpisim::Comm& comm, mpisim::Comm* out) {
  if (auto* m = must_rt()) {
    m->on_barrier();  // communicator management is collective; count it
  }
  return comm.dup(out);
}

mpisim::MpiError barrier(mpisim::Comm& comm) {
  if (auto* m = must_rt()) {
    m->on_barrier();
  }
  return note_deadlock(comm, comm.barrier());
}

mpisim::MpiError bcast(mpisim::Comm& comm, void* buf, std::size_t count,
                       const mpisim::Datatype& type, int root) {
  if (auto* m = must_rt()) {
    m->on_bcast(buf, count, type, comm.rank() == root);
  }
  return note_deadlock(comm, comm.bcast(buf, count, type, root));
}

mpisim::MpiError reduce(mpisim::Comm& comm, const void* sendbuf, void* recvbuf, std::size_t count,
                        const mpisim::Datatype& type, mpisim::ReduceOp op, int root) {
  if (auto* m = must_rt()) {
    m->on_reduce(sendbuf, recvbuf, count, type, comm.rank() == root);
  }
  return note_deadlock(comm, comm.reduce(sendbuf, recvbuf, count, type, op, root));
}

mpisim::MpiError allreduce(mpisim::Comm& comm, const void* sendbuf, void* recvbuf,
                           std::size_t count, const mpisim::Datatype& type, mpisim::ReduceOp op) {
  if (auto* m = must_rt()) {
    m->on_allreduce(sendbuf, recvbuf, count, type);
  }
  return note_deadlock(comm, comm.allreduce(sendbuf, recvbuf, count, type, op));
}

mpisim::MpiError allgather(mpisim::Comm& comm, const void* sendbuf, std::size_t count,
                           const mpisim::Datatype& type, void* recvbuf) {
  if (auto* m = must_rt()) {
    m->on_allgather(sendbuf, count, type, recvbuf, comm.size());
  }
  return note_deadlock(comm, comm.allgather(sendbuf, count, type, recvbuf));
}

mpisim::MpiError gather(mpisim::Comm& comm, const void* sendbuf, std::size_t count,
                        const mpisim::Datatype& type, void* recvbuf, int root) {
  if (auto* m = must_rt()) {
    m->on_gather(sendbuf, count, type, recvbuf, comm.rank() == root, comm.size());
  }
  return note_deadlock(comm, comm.gather(sendbuf, count, type, recvbuf, root));
}

mpisim::MpiError scatter(mpisim::Comm& comm, const void* sendbuf, std::size_t count,
                         const mpisim::Datatype& type, void* recvbuf, int root) {
  if (auto* m = must_rt()) {
    m->on_scatter(sendbuf, count, type, recvbuf, comm.rank() == root, comm.size());
  }
  return note_deadlock(comm, comm.scatter(sendbuf, count, type, recvbuf, root));
}

}  // namespace capi::mpi
