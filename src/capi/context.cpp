#include "capi/context.hpp"

#include <string>

#include "common/assert.hpp"
#include "common/memstats.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace capi {

namespace {
thread_local ToolContext* t_current = nullptr;

/// Publish a per-rank counters struct into the central registry under
/// `prefix` (counters accumulate across ranks; consumers diff snapshots).
template <typename Counters>
void publish_counters(const char* prefix, const Counters& counters) {
  for_each_counter(counters, [&](const char* name, std::uint64_t value) {
    if (value != 0) {
      obs::metric(std::string(prefix) + name).add(value);
    }
  });
}
}  // namespace

ToolContext::ToolContext(int rank, const ToolConfig& config, const cusim::DeviceProfile& profile,
                         const typeart::TypeDB* typedb, int device_count)
    : rank_(rank), config_(config) {
  CUSAN_ASSERT_MSG(device_count >= 1, "at least one device per rank");
  CUSAN_ASSERT_MSG(!(config.must && !config.tsan), "MUST requires TSan");
  CUSAN_ASSERT_MSG(!(config.cusan && !config.tsan), "CuSan requires TSan");
  CUSAN_ASSERT_MSG(!(config.cusan && !config.typeart), "CuSan requires TypeART");

  if (typedb == nullptr) {
    owned_typedb_ = std::make_unique<typeart::TypeDB>();
    typedb = owned_typedb_.get();
  }
  for (int d = 0; d < device_count; ++d) {
    devices_.push_back(std::make_unique<cusim::Device>(profile, rank * device_count + d));
    devices_.back()->set_obs_rank(rank);
  }
  if (config.tsan) {
    rsan::RuntimeConfig rsan_config = config.rsan_config;
    rsan_config.rank = rank;  // execution-graph sync events land on this lane
    tsan_ = std::make_unique<rsan::Runtime>(rsan_config);
  }
  if (config.typeart) {
    types_ = std::make_unique<typeart::Runtime>(typedb);
  }
  if (config.cusan) {
    cusan_ = std::make_unique<cusan::Runtime>(tsan_.get(), types_.get(), config.cusan_config);
    for (const auto& device : devices_) {
      cusan_->bind_device(device.get());
    }
  }
  if (config.must) {
    // MUST uses TypeART when datatype checks are requested; races alone only
    // need the race detector. A private typeart runtime keeps layering clean.
    if (types_ == nullptr) {
      types_ = std::make_unique<typeart::Runtime>(typedb);
    }
    must_ = std::make_unique<must::Runtime>(tsan_.get(), types_.get(), config.must_config);
  }
}

ToolContext::~ToolContext() = default;

RankResult ToolContext::finalize() {
  if (must_) {
    must_->on_finalize();
  }
  RankResult result;
  result.rank = rank_;
  if (tsan_) {
    result.races = tsan_->reports();
    result.tsan_counters = tsan_->counters();
    result.shadow_bytes = tsan_->shadow_resident_bytes();
  }
  if (cusan_) {
    result.cusan_counters = cusan_->counters();
  }
  if (must_) {
    result.must_reports = must_->reports();
    result.must_counters = must_->counters();
  }
  if (types_) {
    result.typeart_stats = types_->stats();
  }
  for (const auto& device : devices_) {
    result.device_live_bytes += device->memory().live_bytes();
    if (device->get_last_error() != cusim::Error::kSuccess) {
      ++result.sticky_errors;
    }
  }
  result.rss_peak_bytes = common::read_memstats().rss_peak_bytes;
  // Feed the rank's tool counters into the one metrics registry (summed
  // across ranks; bench/tools diff snapshots around a session).
  if (tsan_) {
    publish_counters("rsan.", result.tsan_counters);
    obs::metric("rsan.shadow_bytes").add(result.shadow_bytes);
  }
  if (cusan_) {
    publish_counters("cusan.", result.cusan_counters);
  }
  if (must_) {
    publish_counters("must.", result.must_counters);
  }
  return result;
}

bool ToolContext::set_device(int ordinal) {
  if (ordinal < 0 || ordinal >= device_count()) {
    return false;
  }
  current_device_ = ordinal;
  return true;
}

ToolContext* ToolContext::current() { return t_current; }

ToolContext::Binder::Binder(ToolContext& ctx) : previous_(t_current) {
  t_current = &ctx;
  obs::bind_rank(ctx.rank());
}

ToolContext::Binder::~Binder() {
  t_current = previous_;
  obs::bind_rank(previous_ != nullptr ? previous_->rank() : -1);
}

}  // namespace capi
