// The checked MPI API: every call is routed through the MUST interception
// layer (when enabled) before/after forwarding to the mpisim communicator —
// the in-process analog of running the application under `mustrun`.
#pragma once

#include <span>

#include "capi/context.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/request.hpp"

namespace capi::mpi {

mpisim::MpiError send(mpisim::Comm& comm, const void* buf, std::size_t count,
                      const mpisim::Datatype& type, int dest, int tag);
mpisim::MpiError recv(mpisim::Comm& comm, void* buf, std::size_t count,
                      const mpisim::Datatype& type, int source, int tag,
                      mpisim::Status* status = nullptr);
mpisim::MpiError isend(mpisim::Comm& comm, const void* buf, std::size_t count,
                       const mpisim::Datatype& type, int dest, int tag,
                       mpisim::Request** request);
mpisim::MpiError irecv(mpisim::Comm& comm, void* buf, std::size_t count,
                       const mpisim::Datatype& type, int source, int tag,
                       mpisim::Request** request);
mpisim::MpiError wait(mpisim::Comm& comm, mpisim::Request** request,
                      mpisim::Status* status = nullptr);
mpisim::MpiError test(mpisim::Comm& comm, mpisim::Request** request, bool* completed,
                      mpisim::Status* status = nullptr);
mpisim::MpiError waitall(mpisim::Comm& comm, std::span<mpisim::Request*> requests);
mpisim::MpiError waitany(mpisim::Comm& comm, std::span<mpisim::Request*> requests, int* index,
                         mpisim::Status* status = nullptr);
mpisim::MpiError probe(mpisim::Comm& comm, int source, int tag, mpisim::Status* status);
mpisim::MpiError iprobe(mpisim::Comm& comm, int source, int tag, bool* flag,
                        mpisim::Status* status = nullptr);
mpisim::MpiError sendrecv(mpisim::Comm& comm, const void* sendbuf, std::size_t sendcount,
                          const mpisim::Datatype& sendtype, int dest, int sendtag, void* recvbuf,
                          std::size_t recvcount, const mpisim::Datatype& recvtype, int source,
                          int recvtag, mpisim::Status* status = nullptr);

/// MPI_Comm_dup (collective).
mpisim::MpiError comm_dup(mpisim::Comm& comm, mpisim::Comm* out);

mpisim::MpiError barrier(mpisim::Comm& comm);
mpisim::MpiError bcast(mpisim::Comm& comm, void* buf, std::size_t count,
                       const mpisim::Datatype& type, int root);
mpisim::MpiError reduce(mpisim::Comm& comm, const void* sendbuf, void* recvbuf, std::size_t count,
                        const mpisim::Datatype& type, mpisim::ReduceOp op, int root);
mpisim::MpiError allreduce(mpisim::Comm& comm, const void* sendbuf, void* recvbuf,
                           std::size_t count, const mpisim::Datatype& type, mpisim::ReduceOp op);
mpisim::MpiError allgather(mpisim::Comm& comm, const void* sendbuf, std::size_t count,
                           const mpisim::Datatype& type, void* recvbuf);
mpisim::MpiError gather(mpisim::Comm& comm, const void* sendbuf, std::size_t count,
                        const mpisim::Datatype& type, void* recvbuf, int root);
mpisim::MpiError scatter(mpisim::Comm& comm, const void* sendbuf, std::size_t count,
                         const mpisim::Datatype& type, void* recvbuf, int root);

}  // namespace capi::mpi
