// Serialization of a rank's session output for the proc backend: the child
// process packs its RankResult plus everything else that would otherwise be
// lost with its address space — obs metric deltas accumulated since fork,
// diagnostics it emitted, and its slice of the schedule-controller state —
// into one blob published through mpisim::publish_result; the parent decodes
// and merges after World::run. Parent and child are the same forked binary,
// so fixed-layout counter structs travel as raw bytes (size-checked);
// variable parts are length-prefixed.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "capi/context.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "schedsim/controller.hpp"

namespace capi::serde {

/// Everything a proc-backend rank ships back to the supervisor's process.
struct RankPayload {
  RankResult result;
  /// Per-metric increase in the child since fork (counters only move up
  /// within a rank; gauge-style entries ship their child-side value).
  obs::MetricsSnapshot metric_deltas;
  /// Diagnostics emitted in the child (re-emitted parent-side without
  /// re-bumping `diag.<id>` — the deltas above already carry those).
  std::vector<obs::Diagnostic> diagnostics;
  /// Schedule-controller slice: decisions this rank recorded, its stats,
  /// and its latched divergence, if any.
  std::string sched_trace;
  schedsim::Stats sched_stats{};
  std::optional<schedsim::Divergence> sched_divergence;
};

[[nodiscard]] std::vector<std::byte> encode(const RankPayload& payload);

/// False on a truncated/mismatched blob (`out` may be partially filled).
[[nodiscard]] bool decode(std::span<const std::byte> bytes, RankPayload* out);

}  // namespace capi::serde
