#include "capi/cuda.hpp"

#include <thread>
#include <vector>

#include "faultsim/injector.hpp"

namespace capi::cuda {

using detail::ctx;

// -- Memory -----------------------------------------------------------------------

cusim::Error malloc_device_typed(void** out, typeart::TypeId type, std::size_t count) {
  auto& c = ctx();
  const std::size_t elem = c.types() != nullptr ? c.types()->type_db().size_of(type) : 0;
  CUSAN_ASSERT_MSG(elem != 0 || c.types() == nullptr, "unknown type id");
  const cusim::Error err = c.device().malloc_device(out, (elem != 0 ? elem : 1) * count);
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(*out, type, count, typeart::AllocKind::kDevice);
  }
  return err;
}

cusim::Error malloc_managed_typed(void** out, typeart::TypeId type, std::size_t count) {
  auto& c = ctx();
  const std::size_t elem = c.types() != nullptr ? c.types()->type_db().size_of(type) : 0;
  const cusim::Error err = c.device().malloc_managed(out, (elem != 0 ? elem : 1) * count);
  if (err == cusim::Error::kSuccess) {
    detail::on_alloc(*out, type, count, typeart::AllocKind::kManaged);
  }
  return err;
}

cusim::Error free(void* ptr) {
  auto& c = ctx();
  if (auto* cs = c.cusan_rt()) {
    cs->on_free(ptr);
  }
  if (auto* types = c.types(); types != nullptr && ptr != nullptr) {
    (void)types->on_free(ptr);
  }
  return c.device().free(ptr);
}

cusim::Error free_async(void* ptr, cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  // All annotations for this allocation were issued at interception time, so
  // resetting the tool state at the call is safe even though the physical
  // free is stream-ordered.
  if (auto* cs = c.cusan_rt()) {
    cs->on_free(ptr);
  }
  if (auto* types = c.types(); types != nullptr && ptr != nullptr) {
    (void)types->on_free(ptr);
  }
  return c.device().free_async(ptr, stream);
}

cusim::Error free_host(void* ptr) {
  auto& c = ctx();
  if (auto* cs = c.cusan_rt()) {
    cs->on_free(ptr);
  }
  if (auto* types = c.types(); types != nullptr && ptr != nullptr) {
    (void)types->on_free(ptr);
  }
  return c.device().free_host(ptr);
}

void unregister_host_buffer(void* ptr) {
  auto& c = ctx();
  if (auto* tsan = c.tsan()) {
    // Forget shadow state so reused stack/heap addresses cannot alias.
    if (auto* types = c.types()) {
      if (const auto info = types->find(ptr); info.has_value()) {
        tsan->reset_shadow_range(reinterpret_cast<void*>(info->base), info->extent);
      }
    }
  }
  if (auto* types = c.types(); types != nullptr && ptr != nullptr) {
    (void)types->on_free(ptr);
  }
}

// -- Data movement -------------------------------------------------------------------

cusim::Error memcpy(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir) {
  auto& c = ctx();
  cusim::MemcpyDir resolved = dir;
  if (const cusim::Error err = c.device().resolve_memcpy_dir(dst, src, resolved);
      err != cusim::Error::kSuccess) {
    return err;
  }
  if (auto* cs = c.cusan_rt()) {
    cs->on_memcpy(dst, src, bytes, resolved);
  }
  return c.device().memcpy(dst, src, bytes, resolved);
}

cusim::Error memcpy_async(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir,
                          cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  cusim::MemcpyDir resolved = dir;
  if (const cusim::Error err = c.device().resolve_memcpy_dir(dst, src, resolved);
      err != cusim::Error::kSuccess) {
    return err;
  }
  if (auto* cs = c.cusan_rt()) {
    cs->on_memcpy_async(dst, src, bytes, resolved, stream);
  }
  return c.device().memcpy_async(dst, src, bytes, resolved, stream);
}

cusim::Error memset(void* dst, int value, std::size_t bytes) {
  auto& c = ctx();
  if (auto* cs = c.cusan_rt()) {
    cs->on_memset(dst, bytes);
  }
  return c.device().memset(dst, value, bytes);
}

cusim::Error memset_async(void* dst, int value, std::size_t bytes, cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  if (auto* cs = c.cusan_rt()) {
    cs->on_memset_async(dst, bytes, stream);
  }
  return c.device().memset_async(dst, value, bytes, stream);
}

cusim::Error host_unregister(void* ptr) {
  auto& c = ctx();
  if (auto* types = c.types(); types != nullptr && ptr != nullptr) {
    if (auto* tsan = c.tsan()) {
      if (const auto info = types->find(ptr); info.has_value()) {
        tsan->reset_shadow_range(reinterpret_cast<void*>(info->base), info->extent);
      }
    }
    (void)types->on_free(ptr);
  }
  return c.device().host_unregister(ptr);
}

cusim::Error memcpy_2d(void* dst, std::size_t dpitch, const void* src, std::size_t spitch,
                       std::size_t width, std::size_t height, cusim::MemcpyDir dir) {
  auto& c = ctx();
  cusim::MemcpyDir resolved = dir;
  if (const cusim::Error err = c.device().resolve_memcpy_dir(dst, src, resolved);
      err != cusim::Error::kSuccess) {
    return err;
  }
  if (auto* cs = c.cusan_rt()) {
    cs->on_memcpy_2d(dst, dpitch, src, spitch, width, height, resolved, nullptr, /*async=*/false);
  }
  return c.device().memcpy_2d(dst, dpitch, src, spitch, width, height, resolved);
}

cusim::Error memcpy_2d_async(void* dst, std::size_t dpitch, const void* src, std::size_t spitch,
                             std::size_t width, std::size_t height, cusim::MemcpyDir dir,
                             cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  cusim::MemcpyDir resolved = dir;
  if (const cusim::Error err = c.device().resolve_memcpy_dir(dst, src, resolved);
      err != cusim::Error::kSuccess) {
    return err;
  }
  if (auto* cs = c.cusan_rt()) {
    cs->on_memcpy_2d(dst, dpitch, src, spitch, width, height, resolved, stream, /*async=*/true);
  }
  return c.device().memcpy_2d_async(dst, dpitch, src, spitch, width, height, resolved, stream);
}

cusim::Error mem_prefetch_async(const void* ptr, std::size_t bytes, cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  const cusim::Error err = c.device().mem_prefetch_async(ptr, bytes, stream);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_mem_prefetch(stream);
    }
  }
  return err;
}

cusim::Error launch_host_func(cusim::Stream* stream, std::function<void()> fn) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  if (auto* cs = c.cusan_rt()) {
    cs->on_host_func(stream);
  }
  return c.device().launch_host_func(stream, std::move(fn));
}

// -- Streams / events / synchronization ---------------------------------------------------

cusim::Error stream_create(cusim::Stream** out, cusim::StreamFlags flags) {
  auto& c = ctx();
  const cusim::Error err = c.device().stream_create(out, flags);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_stream_create(*out);
    }
  }
  return err;
}

cusim::Error stream_destroy(cusim::Stream* stream) {
  auto& c = ctx();
  if (auto* cs = c.cusan_rt()) {
    cs->on_stream_destroy(stream);
  }
  return c.device().stream_destroy(stream);
}

cusim::Error stream_synchronize(cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  const cusim::Error err = c.device().stream_synchronize(stream);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_stream_synchronize(stream);
    }
  }
  return err;
}

cusim::Error stream_query(cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  const cusim::Error err = c.device().stream_query(stream);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_stream_query_success(stream);
    }
  }
  return err;
}

cusim::Error device_synchronize() {
  auto& c = ctx();
  const cusim::Error err = c.device().device_synchronize();
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      // cudaDeviceSynchronize covers only the *current* device.
      cs->on_device_synchronize(&c.device());
    }
  }
  return err;
}

cusim::Error event_create(cusim::Event** out) {
  auto& c = ctx();
  const cusim::Error err = c.device().event_create(out);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_event_create(*out);
    }
  }
  return err;
}

cusim::Error event_destroy(cusim::Event* event) {
  auto& c = ctx();
  if (auto* cs = c.cusan_rt()) {
    cs->on_event_destroy(event);
  }
  return c.device().event_destroy(event);
}

cusim::Error event_record(cusim::Event* event, cusim::Stream* stream) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  const cusim::Error err = c.device().event_record(event, stream);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_event_record(event, stream);
    }
  }
  return err;
}

cusim::Error event_synchronize(cusim::Event* event) {
  auto& c = ctx();
  const cusim::Error err = c.device().event_synchronize(event);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_event_synchronize(event);
    }
  }
  return err;
}

cusim::Error event_query(cusim::Event* event) {
  auto& c = ctx();
  const cusim::Error err = c.device().event_query(event);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_event_query_success(event);
    }
  }
  return err;
}

cusim::Error stream_wait_event(cusim::Stream* stream, cusim::Event* event) {
  auto& c = ctx();
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  const cusim::Error err = c.device().stream_wait_event(stream, event);
  if (err == cusim::Error::kSuccess) {
    if (auto* cs = c.cusan_rt()) {
      cs->on_stream_wait_event(stream, event);
    }
  }
  return err;
}

cusim::Stream* default_stream() { return ctx().device().default_stream(); }

cusim::Error get_last_error() { return ctx().device().get_last_error(); }

cusim::Error peek_at_last_error() { return ctx().device().peek_at_last_error(); }

cusim::Error set_device(int ordinal) {
  return ctx().set_device(ordinal) ? cusim::Error::kSuccess : cusim::Error::kInvalidValue;
}

int get_device() { return ctx().current_device(); }

int get_device_count() { return ctx().device_count(); }

// -- Kernel launch ---------------------------------------------------------------------------

cusim::Error launch(const kir::KernelInfo& info, cusim::LaunchDims dims, cusim::Stream* stream,
                    std::initializer_list<const void*> ptr_args, cusim::KernelBody body) {
  auto& c = ctx();
  CUSAN_ASSERT_MSG(info.fn != nullptr, "kernel not registered");
  CUSAN_ASSERT_MSG(ptr_args.size() == info.param_modes.size(),
                   "kernel argument count mismatch with IR");
  if (stream == nullptr) {
    stream = c.device().default_stream();
  }
  if (faultsim::Injector::armed()) {
    faultsim::SiteContext where;
    where.device = c.device().ordinal();
    where.rank = c.rank();
    where.stream = static_cast<int>(stream->id());
    auto& injector = faultsim::Injector::instance();
    if (const auto fired = injector.probe(faultsim::Site::kKernel, where)) {
      switch (fired->action) {
        case faultsim::Action::kDelay:
          std::this_thread::sleep_for(fired->delay);
          break;
        case faultsim::Action::kAbort:
          // Launch is accepted but the kernel dies on the device: the error
          // latches at the stream position where the kernel would have run.
          // No annotations are published — the kernel never executed, so it
          // must not create happens-before edges or device accesses.
          return c.device().inject_async_error(stream, cusim::Error::kLaunchFailure, fired->id);
        default:
          injector.mark_surfaced(fired->id, faultsim::Channel::kApiError);
          c.device().latch_error(cusim::Error::kLaunchFailure);
          return cusim::Error::kLaunchFailure;
      }
    }
  }
  // The instrumented callback runs before the actual launch (paper Fig. 9).
  if (auto* cs = c.cusan_rt()) {
    std::vector<cusan::KernelArgAccess> args;
    args.reserve(ptr_args.size());
    std::size_t i = 0;
    for (const void* ptr : ptr_args) {
      const kir::ParamIntervals* intervals =
          i < info.param_intervals.size() ? &info.param_intervals[i] : nullptr;
      const kir::ParamProof* proof =
          i < info.proof.params.size() ? &info.proof.params[i] : nullptr;
      args.push_back(cusan::KernelArgAccess{ptr, info.param_modes[i], intervals, proof});
      ++i;
    }
    cs->on_kernel_launch(stream, info.fn->name().c_str(), args);
  }
  return c.device().launch_kernel(stream, dims, std::move(body), info.fn->name());
}

}  // namespace capi::cuda
