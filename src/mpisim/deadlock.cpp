#include "mpisim/deadlock.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/assert.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"

namespace mpisim {

std::chrono::milliseconds default_watchdog_timeout() {
  if (const char* env = std::getenv("CUSAN_MPI_WATCHDOG_MS"); env != nullptr && env[0] != '\0') {
    const long ms = std::strtol(env, nullptr, 10);
    return std::chrono::milliseconds(ms > 0 ? ms : 0);
  }
  return std::chrono::milliseconds(1000);
}

const BlockedOp* DeadlockReport::for_rank(int rank) const {
  for (const BlockedOp& op : blocked) {
    if (op.rank == rank) {
      return &op;
    }
  }
  return nullptr;
}

std::string DeadlockReport::to_string() const {
  std::string out = "deadlock: no rank can make progress (world size " +
                    std::to_string(world_size) + ")\n";
  for (const BlockedOp& op : blocked) {
    out += "  rank " + std::to_string(op.rank) + ": blocked in " + op.op;
    if (op.peer >= 0) {
      out += " peer=" + std::to_string(op.peer);
    } else if (op.peer == -1 && (op.op.find("Recv") != std::string::npos ||
                                 op.op.find("Probe") != std::string::npos)) {
      out += " peer=MPI_ANY_SOURCE";
    }
    if (op.tag >= 0) {
      out += " tag=" + std::to_string(op.tag);
    }
    out += " comm=" + std::string(op.comm_id == 0 ? "world" : std::to_string(op.comm_id));
    if (op.soft) {
      out += " (polling MPI_Test)";
    }
    out += "\n";
  }
  return out;
}

ProgressTracker::ProgressTracker(int world_size)
    : world_size_(world_size),
      timeout_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                      default_watchdog_timeout())
                      .count()),
      exited_ranks_(static_cast<std::size_t>(world_size), false) {
  CUSAN_ASSERT(world_size > 0);
}

void ProgressTracker::set_timeout(std::chrono::milliseconds timeout) {
  timeout_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(timeout).count(),
      std::memory_order_relaxed);
}

std::chrono::milliseconds ProgressTracker::timeout() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::microseconds(timeout_us_.load(std::memory_order_relaxed)));
}

void ProgressTracker::block(const BlockedOp& op) {
  std::lock_guard lock(mutex_);
  blocked_[op.rank] = op;
  soft_blocked_.erase(op.rank);
}

void ProgressTracker::unblock(int rank) {
  std::lock_guard lock(mutex_);
  blocked_.erase(rank);
}

void ProgressTracker::soft_block(const BlockedOp& op) {
  std::lock_guard lock(mutex_);
  BlockedOp entry = op;
  entry.soft = true;
  soft_blocked_[op.rank] = std::move(entry);
}

void ProgressTracker::soft_unblock(int rank) {
  std::lock_guard lock(mutex_);
  soft_blocked_.erase(rank);
}

void ProgressTracker::rank_exited(int rank) {
  {
    std::lock_guard lock(mutex_);
    if (!exited_ranks_[static_cast<std::size_t>(rank)]) {
      exited_ranks_[static_cast<std::size_t>(rank)] = true;
      ++exited_;
    }
    blocked_.erase(rank);
    soft_blocked_.erase(rank);
  }
  // An exiting rank is a state change: a peer waiting on it can now be part
  // of a provable deadlock, but in-flight sends it made were already counted.
  note_progress();
}

bool ProgressTracker::try_declare(std::uint64_t progress_snapshot) {
  if (deadlocked()) {
    return true;
  }
  std::lock_guard lock(mutex_);
  if (deadlocked()) {
    return true;
  }
  // Count soft blocks only for ranks not also hard-blocked (a rank moves
  // from soft to hard when it enters a real blocking call).
  std::size_t soft = 0;
  for (const auto& [rank, op] : soft_blocked_) {
    soft += blocked_.count(rank) == 0 ? 1 : 0;
  }
  const std::size_t accounted = blocked_.size() + soft + exited_;
  if (accounted < static_cast<std::size_t>(world_size_) ||
      blocked_.size() + soft == 0) {
    return false;
  }
  if (progress_.load(std::memory_order_relaxed) != progress_snapshot) {
    return false;
  }
  DeadlockReport report;
  report.world_size = world_size_;
  for (const auto& [rank, op] : blocked_) {
    report.blocked.push_back(op);
  }
  for (const auto& [rank, op] : soft_blocked_) {
    if (blocked_.count(rank) == 0) {
      report.blocked.push_back(op);
    }
  }
  std::sort(report.blocked.begin(), report.blocked.end(),
            [](const BlockedOp& a, const BlockedOp& b) { return a.rank < b.rank; });
  report_ = std::move(report);
  deadlocked_.store(true, std::memory_order_release);
  obs::metric("mpisim.deadlocks_declared").increment();
  obs::emit_diagnostic(obs::Diagnostic{"mpisim.deadlock", obs::Severity::kError,
                                       /*rank=*/-1, report_.to_string(), 0});
  return true;
}

DeadlockReport ProgressTracker::report() const {
  std::lock_guard lock(mutex_);
  return report_;
}

}  // namespace mpisim
