// The proc backend's parent-side supervisor: owns the world segment's
// lifecycle (create → init → fork → monitor → collect → unlink), reaps rank
// processes, classifies deaths (signal / heartbeat timeout / exit code),
// poisons the world ULFM-style on the first failure, and declares deadlocks
// from outside the world (all live ranks blocked + progress quiet), since a
// fully-wedged world has no thread left to declare one from within.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "mpisim/comm.hpp"
#include "mpisim/deadlock.hpp"
#include "mpisim/failure.hpp"
#include "mpisim/shm.hpp"
#include "mpisim/shm_layout.hpp"

namespace mpisim {

class Supervisor {
 public:
  struct Options {
    int world_size{2};
    /// Deadlock quiet-time budget; <= 0 disables supervisor-side detection.
    std::chrono::milliseconds watchdog{std::chrono::milliseconds(1000)};
    /// Rank heartbeat stamping interval (staleness threshold derives from it).
    std::chrono::milliseconds heartbeat{std::chrono::milliseconds(50)};
    std::uint32_t ring_bytes{0};  ///< 0: proc::default_ring_bytes(world_size)
    std::uint32_t eager_max{0};   ///< 0: proc::default_eager_max(ring_bytes)
  };

  explicit Supervisor(Options options);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Fork one process per rank running `rank_main(comm)`, monitor them to
  /// completion, collect published results, and tear the segment down.
  /// Exactly one call per Supervisor.
  void run(const std::function<void(Comm)>& rank_main);

  /// The failure report, if a rank died (at most one: the first failure).
  [[nodiscard]] const std::optional<RankFailureReport>& failure_report() const {
    return failure_;
  }
  /// Non-empty when the supervisor declared a deadlock.
  [[nodiscard]] const DeadlockReport& deadlock_report() const { return deadlock_; }
  /// The blob rank published via proc::publish_result (empty: none).
  [[nodiscard]] const std::vector<std::byte>& rank_result(int rank) const {
    return results_[static_cast<std::size_t>(rank)];
  }
  /// what() of the first (by rank) rank_main exception, "" if none threw.
  [[nodiscard]] const std::string& first_app_error() const { return first_app_error_; }

 private:
  struct Child {
    pid_t pid{-1};
    bool reaped{false};
    bool hb_kill_sent{false};   ///< we SIGKILLed it on heartbeat staleness
    bool backstop_kill{false};  ///< we SIGKILLed it post-poison (teardown backstop)
  };

  /// Seqlock-consistent copy of a rank slot's descriptive block. A rank
  /// killed mid-write leaves `ver` odd forever; after a bounded retry the
  /// possibly-torn copy is used anyway (diagnostic data, not correctness).
  struct SlotSnap {
    shmlayout::ShmBlockedOp blocked{};
    char site[shmlayout::kMaxSite]{};
    std::uint32_t inflight_count{0};
    shmlayout::ShmInflight inflight[shmlayout::kMaxInflight]{};
    char error_msg[shmlayout::kMaxErrorMsg]{};
  };

  void setup_segment();
  [[noreturn]] void child_main(int rank, const std::function<void(Comm)>& rank_main);
  void monitor();
  void reap_once();
  void classify_death(int rank, int wait_status);
  void declare_failure(int rank, FailureKind kind, int signal, int exit_code);
  void check_heartbeats();
  void check_deadlock();
  void backstop_after_poison();
  void collect_results();
  void teardown();
  [[nodiscard]] SlotSnap read_slot(int rank) const;
  [[nodiscard]] int live_unreaped() const;

  Options options_;
  shm::Segment seg_;
  shmlayout::Layout layout_;
  std::vector<Child> children_;
  std::vector<std::vector<std::byte>> results_;
  std::optional<RankFailureReport> failure_;
  DeadlockReport deadlock_;
  std::string first_app_error_;

  // Deadlock quiet-time tracking.
  std::uint64_t last_progress_{0};
  std::uint64_t quiet_since_ns_{0};
  // Post-poison teardown backstop.
  std::uint64_t poisoned_at_ns_{0};
};

}  // namespace mpisim
