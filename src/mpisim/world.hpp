// The MPI world: launches N ranks sharing one communicator, joins them,
// and propagates failures. One World::run corresponds to one mpirun
// invocation of the paper's benchmark setup.
//
// Two backends share the Comm surface (selected by CUSAN_MPI_BACKEND):
//  - thread (default): ranks are threads of this process — fast, and a
//    crash anywhere takes the whole world down.
//  - proc: ranks are forked processes talking over shared-memory rings,
//    with a parent-side Supervisor providing crash containment — a dying
//    rank becomes a RankFailureReport and poisoned communicators instead
//    of a dead test binary (see docs/architecture.md, "Process backend").
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/failure.hpp"

namespace mpisim {

class Supervisor;

enum class Backend {
  kThread,  ///< ranks as threads, in-process mailboxes
  kProc,    ///< ranks as processes, shared-memory rings + supervisor
};

[[nodiscard]] constexpr const char* to_string(Backend b) {
  return b == Backend::kProc ? "proc" : "thread";
}

/// CUSAN_MPI_BACKEND: "thread" (default) or "proc"; a ScopedBackend
/// override (tests) takes precedence over the environment.
[[nodiscard]] Backend default_backend();

/// RAII override of default_backend() for tests that sweep both backends
/// without touching the environment. Nestable; not thread-safe (install
/// from the test main thread before constructing Worlds).
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::optional<Backend> prev_;
};

/// Publish this rank's opaque result blob so the parent World can read it
/// after run() (proc: shipped via a named segment; thread: stored
/// directly). Call from inside rank_main; at most once per rank.
void publish_result(const Comm& comm, std::span<const std::byte> bytes);

class World {
 public:
  explicit World(int size);
  World(int size, Backend backend);
  ~World();

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Backend backend() const { return backend_; }

  /// Execute `rank_main(comm)` on every rank and join. If any rank throws,
  /// the first (by rank) exception is rethrown after all ranks finished
  /// (mirrors an MPI abort). In the proc backend a *crashing* rank does not
  /// throw here — it yields failure_report() and poisoned peers.
  void run(const std::function<void(Comm)>& rank_main);

  /// The progress watchdog shared by the world communicator and all dups.
  /// In the proc backend its timeout configures the supervisor-side
  /// deadlock detection (the tracker itself sees no traffic).
  [[nodiscard]] ProgressTracker& watchdog() { return *tracker_; }
  [[nodiscard]] const ProgressTracker& watchdog() const { return *tracker_; }
  void set_watchdog_timeout(std::chrono::milliseconds timeout) {
    tracker_->set_timeout(timeout);
  }

  /// Proc backend: rank heartbeat stamping interval (before run()).
  void set_heartbeat_interval(std::chrono::milliseconds interval) {
    heartbeat_ = interval;
  }

  /// The rank failure detected during run(), if any (proc backend; the
  /// thread backend cannot contain crashes and never sets this).
  [[nodiscard]] const std::optional<RankFailureReport>& failure_report() const {
    return failure_;
  }
  /// The deadlock report, whichever side declared it (empty: none).
  [[nodiscard]] DeadlockReport deadlock_report() const;
  /// The blob `rank` published via publish_result (empty: none).
  [[nodiscard]] const std::vector<std::byte>& rank_result(int rank) const;

 private:
  friend void publish_result(const Comm& comm, std::span<const std::byte> bytes);

  void run_threads(const std::function<void(Comm)>& rank_main);
  void run_procs(const std::function<void(Comm)>& rank_main);

  int size_;
  Backend backend_;
  std::chrono::milliseconds heartbeat_;
  std::shared_ptr<ProgressTracker> tracker_;
  std::shared_ptr<CommImpl> impl_;  ///< thread backend only
  std::unique_ptr<Supervisor> supervisor_;  ///< proc backend, kept after run()
  std::vector<std::vector<std::byte>> thread_results_;
  std::optional<RankFailureReport> failure_;
};

}  // namespace mpisim
