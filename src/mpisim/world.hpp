// The MPI world: launches N rank threads sharing one communicator, joins
// them, and propagates failures. One World::run corresponds to one mpirun
// invocation of the paper's benchmark setup.
#pragma once

#include <functional>

#include "mpisim/comm.hpp"

namespace mpisim {

class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const { return size_; }

  /// Execute `rank_main(comm)` on every rank in its own thread and join.
  /// If any rank throws, the first exception is rethrown after all ranks
  /// finished (mirrors an MPI abort).
  void run(const std::function<void(Comm)>& rank_main);

  /// The progress watchdog shared by the world communicator and all dups.
  [[nodiscard]] ProgressTracker& watchdog() { return *tracker_; }
  [[nodiscard]] const ProgressTracker& watchdog() const { return *tracker_; }
  void set_watchdog_timeout(std::chrono::milliseconds timeout) {
    tracker_->set_timeout(timeout);
  }

 private:
  int size_;
  std::shared_ptr<ProgressTracker> tracker_;
  std::shared_ptr<CommImpl> impl_;
};

}  // namespace mpisim
