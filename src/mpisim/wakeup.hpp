// Targeted wakeups for the sharded communication engine: each rank of a
// world parks on its own WaiterSlot instead of a communicator-wide condition
// variable. Completing an operation wakes exactly the rank that can consume
// it; only deadlock declaration/poisoning broadcasts to every slot (the one
// place a thundering herd is the *point* — every blocked rank must observe
// the verdict).
//
// The slot is a (mutex, condvar, epoch) triple. Signalling bumps the epoch;
// a waiter passes the last epoch it saw and parks only if nothing was
// signalled since. The epoch closes the classic lost-wakeup window between
// "predicate checked false" and "parked": predicates are evaluated *outside*
// the slot lock (they take mailbox locks or read request atomics), so a
// completion racing with the check bumps the epoch and the park returns
// immediately.
//
// Lock-ordering rule: completers may signal a slot while holding a mailbox
// lock (mailbox -> slot), therefore waiters must never evaluate a predicate
// that takes a mailbox lock while holding their slot lock. WaiterSlot's API
// enforces this shape: predicates live in the caller's loop, not in here.
//
// One hub is shared by a world and all its dup'd communicators: a rank is a
// thread and can only be blocked in one call on one communicator at a time,
// so a per-(world, rank) slot is sufficient and keeps cross-communicator
// wakeups (e.g. a dup'd comm's delivery unblocking a rank) working.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "mpisim/counters.hpp"
#include "schedsim/controller.hpp"

namespace mpisim {

class WaiterSlot {
 public:
  /// Current epoch; pass it to wait() to detect signals delivered since.
  [[nodiscard]] std::uint64_t epoch() {
    std::lock_guard lock(mutex_);
    return epoch_;
  }

  /// Wake the parked owner (if any). Callers may hold a mailbox lock. The
  /// epoch bump is unconditional (so a racing waiter about to park returns
  /// immediately); the condvar notify — the expensive futex syscall — is
  /// skipped when the owner is not parked, which is the common case when it
  /// is still in its pre-park yield loop.
  void signal() {
    bool wake = false;
    {
      std::lock_guard lock(mutex_);
      ++epoch_;
      wake = parked_;
    }
    if (wake) {
      detail::bump(*detail::contention_counters().wakeups_delivered);
      cv_.notify_one();  // at most one thread (the owning rank) ever parks here
    }
  }

  /// Park until the epoch advances past `seen` or `timeout` elapses;
  /// returns the epoch at wake time. A signal between the caller's
  /// predicate check and this call returns immediately.
  std::uint64_t wait(std::uint64_t seen, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (epoch_ == seen) {
      parked_ = true;
      cv_.wait_for(lock, timeout, [&] { return epoch_ != seen; });
      parked_ = false;
    }
    return epoch_;
  }

  /// Untimed variant (watchdog disabled: park until signalled).
  std::uint64_t wait(std::uint64_t seen) {
    std::unique_lock lock(mutex_);
    if (epoch_ == seen) {
      parked_ = true;
      cv_.wait(lock, [&] { return epoch_ != seen; });
      parked_ = false;
    }
    return epoch_;
  }

 private:
  friend class WaiterHub;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t epoch_{0};  ///< guarded by mutex_
  bool parked_{false};      ///< guarded by mutex_; owner is inside a cv wait
};

/// Per-world array of waiter slots, shared by the world communicator and all
/// its dup children.
class WaiterHub {
 public:
  explicit WaiterHub(int size) : slots_(static_cast<std::size_t>(size)) {
    for (auto& slot : slots_) {
      slot = std::make_unique<WaiterSlot>();
    }
  }

  [[nodiscard]] WaiterSlot& slot(int rank) { return *slots_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }

  /// Wake every rank. Reserved for deadlock declaration/poisoning — the only
  /// events every blocked rank must observe regardless of what it waits on.
  /// `caller_rank` attributes the wakeup-order decisions to the broadcasting
  /// rank when the schedule controller is armed (-1: unattributed).
  void broadcast(int caller_rank = -1) {
    if (schedsim::Controller::armed() && slots_.size() > 1) {
      // Schedule-exploration choice point: the order ranks are woken in is
      // a selection-permutation, one (remaining-count)-way decision per
      // slot. Every rank is still woken — only the order varies.
      auto& controller = schedsim::Controller::instance();
      const schedsim::ActorId actor{caller_rank, 'h', 0};
      std::vector<int> order(slots_.size());
      std::iota(order.begin(), order.end(), 0);
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        const int pick = controller.choose(schedsim::Site::kWakeOrder, actor,
                                           static_cast<int>(order.size() - i), 0);
        std::swap(order[i], order[i + static_cast<std::size_t>(pick)]);
      }
      for (const int idx : order) {
        wake_slot(*slots_[static_cast<std::size_t>(idx)]);
      }
    } else {
      for (auto& slot : slots_) {
        wake_slot(*slot);
      }
    }
    detail::bump(*detail::contention_counters().wakeups_broadcast, slots_.size());
  }

 private:
  static void wake_slot(WaiterSlot& slot) {
    {
      std::lock_guard lock(slot.mutex_);
      ++slot.epoch_;
    }
    slot.cv_.notify_all();
  }

  std::vector<std::unique_ptr<WaiterSlot>> slots_;
};

}  // namespace mpisim
