#include "mpisim/failure.hpp"

#include <csignal>

namespace mpisim {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kSignal:
      return "signal";
    case FailureKind::kHeartbeatTimeout:
      return "heartbeat-timeout";
    case FailureKind::kExitCode:
      return "exit-code";
  }
  return "?";
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGKILL:
      return "SIGKILL";
    case SIGABRT:
      return "SIGABRT";
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGILL:
      return "SIGILL";
    case SIGFPE:
      return "SIGFPE";
    case SIGTERM:
      return "SIGTERM";
    case SIGINT:
      return "SIGINT";
    case SIGHUP:
      return "SIGHUP";
    case SIGPIPE:
      return "SIGPIPE";
    case SIGQUIT:
      return "SIGQUIT";
    case SIGTRAP:
      return "SIGTRAP";
    default:
      return "SIG" + std::to_string(sig);
  }
}

std::string RankFailureReport::to_string() const {
  std::string out = "rank " + std::to_string(rank) + " ";
  switch (kind) {
    case FailureKind::kSignal:
      out += "killed by " + signal_name(signal);
      break;
    case FailureKind::kHeartbeatTimeout:
      out += "stopped heartbeating (hang; killed with " + signal_name(signal) + ")";
      break;
    case FailureKind::kExitCode:
      out += "exited with code " + std::to_string(exit_code);
      break;
  }
  if (!site.empty()) {
    out += " in " + site;
  }
  if (inflight_total > 0) {
    out += " (" + std::to_string(inflight_total) + " in-flight:";
    for (const InflightOp& op : inflight) {
      out += op.is_send ? " send->" : " recv<-";
      out += op.peer >= 0 ? std::to_string(op.peer) : "*";
      out += "#";
      out += op.tag >= 0 ? std::to_string(op.tag) : "*";
      out += ",";
    }
    if (out.back() == ',') {
      out.pop_back();
    }
    if (inflight.size() < inflight_total) {
      out += ", …";
    }
    out += ")";
  }
  return out;
}

}  // namespace mpisim
