#include "mpisim/comm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "faultsim/injector.hpp"
#include "mpisim/comm_impl.hpp"
#include "mpisim/counters.hpp"
#include "mpisim/op_scope.hpp"
#include "mpisim/request.hpp"
#include "mpisim/wakeup.hpp"
#include "obs/ring.hpp"
#include "schedsim/controller.hpp"

namespace mpisim {

// Internal tags used by the collective tree implementations. User tags are
// required to be >= 0, so the reserved range can never collide.
namespace {
constexpr int kTagBarrierIn = -100;
constexpr int kTagBarrierOut = -101;
constexpr int kTagBcast = -102;
constexpr int kTagReduce = -103;
constexpr int kTagGather = -104;
constexpr int kTagScatter = -105;
constexpr int kTagAllreduce = -106;
constexpr int kTagAllgather = -107;

/// How often a blocked thread re-checks the watchdog condition.
constexpr auto kWatchdogPoll = std::chrono::milliseconds(5);
/// Consecutive incomplete Test calls before the rank counts as soft-blocked.
constexpr int kSoftBlockThreshold = 64;
/// Predicate re-checks (with sched yields) before parking on the waiter
/// slot. On an oversubscribed host the peer usually completes the operation
/// within one timeslice, so yielding first avoids the two futex transitions
/// of a condvar park on the hot path.
constexpr int kParkSpinYields = 4;
/// Largest yield count the schedule controller may pick for the pre-park
/// phase (candidates 0..kMaxParkSpinYields; the default stays
/// kParkSpinYields). Routing the phase through the controller makes it part
/// of the recorded schedule instead of an uncontrolled busy-wait.
constexpr int kMaxParkSpinYields = 8;

// OpScope / current_op_label moved to mpisim/op_scope.hpp (shared with the
// proc backend).

/// Watchdog timeout in the shared monotonic-clock unit (common::now_ns).
[[nodiscard]] std::uint64_t timeout_as_ns(std::chrono::milliseconds timeout) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count());
}

}  // namespace

// The sharded in-process communication engine (thread backend). One Mailbox
// per destination rank, each with its own lock, per-source FIFO sub-queues,
// and a channel epoch counter that totally orders entries across the
// sub-queues (so wildcard matching still picks the oldest, as a single
// merged queue would). A completion signals only the involved rank's
// WaiterSlot; the sole broadcast is deadlock declaration/poisoning, which
// every blocked rank must observe.
class ThreadCommImpl final : public CommImpl {
 public:
  ThreadCommImpl(int size, std::shared_ptr<ProgressTracker> tracker, int comm_id,
                 std::shared_ptr<WaiterHub> hub)
      : size_(size),
        tracker_(std::move(tracker)),
        comm_id_(comm_id),
        hub_(std::move(hub)),
        rank_local_(static_cast<std::size_t>(size)),
        dup_counts_(static_cast<std::size_t>(size), 0) {
    mailboxes_.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      mailboxes_.push_back(std::make_unique<Mailbox>(size));
    }
  }

  [[nodiscard]] int size() const override { return size_; }
  [[nodiscard]] int comm_id() const override { return comm_id_; }
  [[nodiscard]] ProgressTracker* tracker() const { return tracker_.get(); }

  [[nodiscard]] bool deadlocked() const override {
    return tracker_ != nullptr && tracker_->deadlocked();
  }

  [[nodiscard]] DeadlockReport deadlock_report() const override {
    return tracker_ != nullptr ? tracker_->report() : DeadlockReport{};
  }

  /// Wake every rank of this world (rank exit, deadlock poisoning).
  void wake_all() { hub_->broadcast(); }

  MpiError post_send(int src, int dest, int tag, const void* buf, std::size_t count,
                     const Datatype& type) override {
    Message msg;
    msg.src = src;
    msg.tag = tag;
    // Pack outside any lock: only the queue manipulation is serialized.
    msg.payload.resize(type.packed_size() * count);
    type.pack(buf, count, msg.payload.data());
    type.signature(count, msg.signature);

    clear_soft(src);
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
    {
      MailboxLock lock(box);
      // Match the oldest posted receive accepting (src, tag): the head
      // tag-acceptor of the per-source queue vs the wildcard queue, the
      // lower channel epoch being the one a merged queue would have found
      // first.
      std::deque<PostedRecv>& per_src = box.by_src[static_cast<std::size_t>(src)].posted;
      const auto specific = std::find_if(per_src.begin(), per_src.end(), [&](const PostedRecv& p) {
        return tag_accepts(p.tag, tag);
      });
      const auto wildcard =
          std::find_if(box.wildcard.begin(), box.wildcard.end(),
                       [&](const PostedRecv& p) { return tag_accepts(p.tag, tag); });
      const bool have_specific = specific != per_src.end();
      const bool have_wildcard = wildcard != box.wildcard.end();
      if (have_specific || have_wildcard) {
        const bool use_specific =
            have_specific && (!have_wildcard || specific->epoch < wildcard->epoch);
        PostedRecv posted = use_specific ? *specific : *wildcard;
        if (use_specific) {
          per_src.erase(specific);
        } else {
          box.wildcard.erase(wildcard);
        }
        deliver(msg, posted);
      } else {
        msg.epoch = box.next_epoch++;
        box.by_src[static_cast<std::size_t>(src)].unexpected.push_back(std::move(msg));
        note_progress();  // a blocked probe/recv poster may now match
      }
    }
    // Targeted wakeup: only the destination rank can be waiting on this
    // mailbox (its recv/probe/wait predicates), so only its slot is poked.
    hub_->slot(dest).signal();
    return MpiError::kSuccess;
  }

  MpiError post_recv(int dest, int source, int tag, void* buf, std::size_t count,
                     const Datatype& type, Request* request) override {
    PostedRecv posted;
    posted.source = source;
    posted.tag = tag;
    posted.buffer = buf;
    posted.count = count;
    posted.type = type;
    posted.request = request;

    clear_soft(dest);
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
    MailboxLock lock(box);
    std::deque<Message>* match_queue = nullptr;
    std::deque<Message>::iterator match;
    if (source != kAnySource) {
      std::deque<Message>& q = box.by_src[static_cast<std::size_t>(source)].unexpected;
      const auto it = std::find_if(
          q.begin(), q.end(), [&](const Message& m) { return tag_accepts(tag, m.tag); });
      if (it != q.end()) {
        match_queue = &q;
        match = it;
      }
    } else {
      // ANY_SOURCE slow path: scan every source channel's head tag-acceptor
      // and take the globally oldest (lowest channel epoch). Per-channel
      // FIFO is MPI law (non-overtaking), but the epoch order *across*
      // senders is a timing artifact — exactly the nondeterminism a
      // wildcard receive observes — so when the schedule controller is
      // armed it picks among the channel heads instead.
      detail::bump(*detail::contention_counters().any_source_scans);
      if (schedsim::Controller::armed()) {
        struct Candidate {
          std::deque<Message>* queue;
          std::deque<Message>::iterator it;
        };
        std::vector<Candidate> candidates;
        for (auto& src_q : box.by_src) {
          const auto it =
              std::find_if(src_q.unexpected.begin(), src_q.unexpected.end(),
                           [&](const Message& m) { return tag_accepts(tag, m.tag); });
          if (it != src_q.unexpected.end()) {
            candidates.push_back({&src_q.unexpected, it});
          }
        }
        if (!candidates.empty()) {
          // Candidate 0 = oldest epoch (today's deterministic default).
          std::sort(candidates.begin(), candidates.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.it->epoch < b.it->epoch;
                    });
          const int pick = schedsim::Controller::instance().choose(
              schedsim::Site::kMatchRecv, {dest, 'h', 0},
              static_cast<int>(candidates.size()), 0);
          match_queue = candidates[static_cast<std::size_t>(pick)].queue;
          match = candidates[static_cast<std::size_t>(pick)].it;
        }
      } else {
        for (auto& src_q : box.by_src) {
          const auto it =
              std::find_if(src_q.unexpected.begin(), src_q.unexpected.end(),
                           [&](const Message& m) { return tag_accepts(tag, m.tag); });
          if (it != src_q.unexpected.end() &&
              (match_queue == nullptr || it->epoch < match->epoch)) {
            match_queue = &src_q.unexpected;
            match = it;
          }
        }
      }
    }
    if (match_queue != nullptr) {
      Message msg = std::move(*match);
      match_queue->erase(match);
      deliver(msg, posted);
      return MpiError::kSuccess;
    }
    posted.epoch = box.next_epoch++;
    if (source != kAnySource) {
      box.by_src[static_cast<std::size_t>(source)].posted.push_back(posted);
    } else {
      box.wildcard.push_back(posted);
    }
    return MpiError::kSuccess;
  }

  MpiError wait(int rank, Request** request, Status* status) override {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    BlockedOp op;
    op.rank = rank;
    op.op = current_op_label("MPI_Wait");
    op.peer = request_peer(req);
    op.tag = request_tag(req);
    op.comm_id = comm_id_;
    const MpiError blocked = blocked_wait(op, [req] { return request_complete(req); });
    if (blocked != MpiError::kSuccess) {
      // Deadlock: the request stays pending (it can never complete); MUST's
      // finalize-time leak check will see and report it.
      if (status != nullptr) {
        *status = Status{};
        status->error = blocked;
      }
      return blocked;
    }
    const Status st = request_status(req);
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  MpiError test(int rank, Request** request, bool* completed, Status* status) override {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    if (!request_complete(req)) {
      if (completed != nullptr) {
        *completed = false;
      }
      if (deadlocked()) {
        return MpiError::kDeadlock;
      }
      // A rank spinning on an incomplete Test cannot make progress by
      // itself: after a burst of fruitless polls it counts as (soft)
      // blocked so a Test-polling rank doesn't mask a deadlock forever.
      // The streak state is only ever touched by the owning rank's thread.
      RankLocal& rl = rank_local_[static_cast<std::size_t>(rank)];
      if (tracker_ != nullptr && ++rl.test_polls >= kSoftBlockThreshold) {
        if (!rl.soft_blocked) {
          BlockedOp op;
          op.rank = rank;
          op.op = current_op_label("MPI_Test");
          op.peer = request_peer(req);
          op.tag = request_tag(req);
          op.comm_id = comm_id_;
          tracker_->soft_block(op);
          rl.soft_blocked = true;
          rl.soft_snapshot = tracker_->progress();
          rl.soft_quiet_since = common::now_ns();
        } else if (tracker_->timeout().count() > 0) {
          // A soft-blocked rank may be the only live thread (everyone else
          // hard-blocked or exited): it must drive declaration itself, or an
          // all-Test-polling deadlock would spin forever.
          const std::uint64_t progress = tracker_->progress();
          const std::uint64_t now = common::now_ns();
          if (progress != rl.soft_snapshot) {
            rl.soft_snapshot = progress;
            rl.soft_quiet_since = now;
          } else if (now - rl.soft_quiet_since >= timeout_as_ns(tracker_->timeout())) {
            if (tracker_->try_declare(rl.soft_snapshot)) {
              hub_->broadcast(rank);  // poisoning: every blocked rank must see it
              return MpiError::kDeadlock;
            }
            rl.soft_quiet_since = now;
          }
        }
      }
      return MpiError::kSuccess;
    }
    clear_soft(rank);
    const Status st = request_status(req);
    if (completed != nullptr) {
      *completed = true;
    }
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  MpiError waitany(int rank, std::span<Request*> requests, int* index, Status* status) override {
    if (index == nullptr) {
      return MpiError::kInvalidArg;
    }
    *index = -1;
    const Request* first_pending = nullptr;
    bool any = false;
    for (const Request* req : requests) {
      any = any || req != nullptr;
      if (first_pending == nullptr && req != nullptr) {
        first_pending = req;
      }
    }
    if (!any) {
      return MpiError::kRequestNull;
    }
    BlockedOp op;
    op.rank = rank;
    op.op = current_op_label("MPI_Waitany");
    op.peer = request_peer(first_pending);
    op.tag = request_tag(first_pending);
    op.comm_id = comm_id_;
    const MpiError blocked = blocked_wait(op, [&] {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i] != nullptr && request_complete(requests[i])) {
          *index = static_cast<int>(i);
          return true;
        }
      }
      return false;
    });
    if (blocked != MpiError::kSuccess) {
      if (status != nullptr) {
        *status = Status{};
        status->error = blocked;
      }
      return blocked;
    }
    if (schedsim::Controller::armed()) {
      // MPI_Waitany may return *any* completed request; the scan above pins
      // the lowest index. Under exploration the controller picks among all
      // currently-complete candidates (a re-scan only ever adds candidates,
      // so the recorded choice stays valid on replay).
      std::vector<int> complete;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i] != nullptr && request_complete(requests[i])) {
          complete.push_back(static_cast<int>(i));
        }
      }
      if (complete.size() > 1) {
        const int pick = schedsim::Controller::instance().choose(
            schedsim::Site::kWaitany, {rank, 'h', 0}, static_cast<int>(complete.size()), 0);
        *index = complete[static_cast<std::size_t>(pick)];
      }
    }
    return wait(rank, &requests[static_cast<std::size_t>(*index)], status);
  }

  MpiError probe(int rank, int source, int tag, bool blocking, bool* flag,
                 Status* status) override {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
    // Envelope snapshot: the matched message cannot be referenced outside
    // the mailbox lock (the owning rank could consume it), so copy what
    // Status needs while holding it.
    const auto find_match = [&]() -> std::optional<Status> {
      MailboxLock lock(box);
      const Message* found = nullptr;
      if (source != kAnySource) {
        const std::deque<Message>& q = box.by_src[static_cast<std::size_t>(source)].unexpected;
        const auto it = std::find_if(
            q.begin(), q.end(), [&](const Message& m) { return tag_accepts(tag, m.tag); });
        if (it != q.end()) {
          found = &*it;
        }
      } else {
        detail::bump(*detail::contention_counters().any_source_scans);
        for (const auto& src_q : box.by_src) {
          const auto it =
              std::find_if(src_q.unexpected.begin(), src_q.unexpected.end(),
                           [&](const Message& m) { return tag_accepts(tag, m.tag); });
          if (it != src_q.unexpected.end() && (found == nullptr || it->epoch < found->epoch)) {
            found = &*it;
          }
        }
      }
      if (found == nullptr) {
        return std::nullopt;
      }
      return Status{found->src, found->tag, found->payload.size(), MpiError::kSuccess};
    };
    std::optional<Status> envelope = find_match();
    if (!blocking) {
      if (flag != nullptr) {
        *flag = envelope.has_value();
      }
    } else if (!envelope.has_value()) {
      BlockedOp op;
      op.rank = rank;
      op.op = current_op_label("MPI_Probe");
      op.peer = source;
      op.tag = tag;
      op.comm_id = comm_id_;
      const MpiError blocked = blocked_wait(op, [&] {
        envelope = find_match();
        return envelope.has_value();
      });
      if (blocked != MpiError::kSuccess) {
        if (status != nullptr) {
          *status = Status{};
          status->error = blocked;
        }
        return blocked;
      }
    }
    if (envelope.has_value() && status != nullptr) {
      *status = *envelope;
    }
    return MpiError::kSuccess;
  }

  /// Eager sends complete on the posting thread itself: the owner cannot be
  /// waiting on the request yet, so no wakeup is needed.
  void complete_send_request(Request* req, std::size_t bytes) override {
    publish_status(req, Status{-1, -1, bytes, MpiError::kSuccess});
    note_progress();
  }

  /// An injected `stall` fault: park the calling rank as if the operation
  /// never completed, until the watchdog declares a deadlock. With no
  /// tracker the stall degrades to a synchronous failure (no hang).
  MpiError stall(int rank, const char* op_name, int peer, int tag,
                 std::uint64_t fault_id) override {
    auto& injector = faultsim::Injector::instance();
    if (tracker_ != nullptr && tracker_->timeout().count() > 0) {
      BlockedOp op;
      op.rank = rank;
      op.op = std::string(op_name) + " [stalled by fault plan]";
      op.peer = peer;
      op.tag = tag;
      op.comm_id = comm_id_;
      const MpiError err = blocked_wait(op, [] { return false; });
      injector.mark_surfaced(fault_id, faultsim::Channel::kDeadlockReport);
      return err;
    }
    injector.mark_surfaced(fault_id, faultsim::Channel::kApiError);
    return MpiError::kOther;
  }

 private:
  struct Message {
    int src{};
    int tag{};
    std::uint64_t epoch{};            ///< mailbox arrival order (set when queued)
    std::vector<std::byte> payload;   ///< packed representation
    std::vector<Scalar> signature;    ///< sender's type signature (MUST metadata)
  };

  struct PostedRecv {
    int source{};
    int tag{};
    std::uint64_t epoch{};  ///< mailbox posting order (set when queued)
    void* buffer{};
    std::size_t count{};
    Datatype type;
    Request* request{};  ///< completion target
  };

  /// One source channel within a destination mailbox.
  struct SrcQueues {
    std::deque<Message> unexpected;  ///< arrived, not yet matched
    std::deque<PostedRecv> posted;   ///< posted with this specific source
  };

  /// Per-destination shard: its own lock, per-source FIFO sub-queues, a
  /// wildcard (ANY_SOURCE) posted queue, and a channel epoch counter giving
  /// a total arrival/posting order across the sub-queues. Cacheline-aligned
  /// so neighbouring shards don't false-share.
  struct alignas(64) Mailbox {
    explicit Mailbox(int size) : by_src(static_cast<std::size_t>(size)) {}
    std::mutex mutex;
    std::uint64_t next_epoch{0};       ///< guarded by mutex
    std::vector<SrcQueues> by_src;     ///< guarded by mutex
    std::deque<PostedRecv> wildcard;   ///< guarded by mutex
  };

  class MailboxLock {
   public:
    explicit MailboxLock(Mailbox& box) : lock_(box.mutex) {
      detail::bump(*detail::contention_counters().mailbox_locks);
    }

   private:
    std::lock_guard<std::mutex> lock_;
  };

  /// Per-rank Test-poll streak. Only the owning rank's thread reads or
  /// writes its entry, so no lock is needed; padding avoids false sharing.
  struct alignas(64) RankLocal {
    int test_polls{0};
    bool soft_blocked{false};
    std::uint64_t soft_snapshot{0};
    std::uint64_t soft_quiet_since{0};  ///< common::now_ns timestamp
  };

  [[nodiscard]] static bool tag_accepts(int want_tag, int tag) {
    return want_tag == kAnyTag || want_tag == tag;
  }

  void note_progress() {
    if (tracker_ != nullptr) {
      tracker_->note_progress();
    }
  }

  /// Reset the rank's Test-poll streak (and soft-block registration): the
  /// rank just made or observed progress, or entered a real blocking call.
  void clear_soft(int rank) {
    if (rank < 0 || rank >= size_) {
      return;
    }
    RankLocal& rl = rank_local_[static_cast<std::size_t>(rank)];
    rl.test_polls = 0;
    if (rl.soft_blocked) {
      rl.soft_blocked = false;
      if (tracker_ != nullptr) {
        tracker_->soft_unblock(rank);
      }
    }
  }

  /// Block the rank until `pred` holds, parking on its WaiterSlot and
  /// participating in the progress watchdog: the blocked op is registered,
  /// the park re-checks periodically, and when every live rank is blocked
  /// with no progress for the timeout the wait returns kDeadlock instead of
  /// hanging. `pred` is evaluated with no locks held by this function; it
  /// may take mailbox locks or read request completion atomics. Templated
  /// over the predicate so the hot path allocates no std::function.
  template <typename Pred>
  MpiError blocked_wait(const BlockedOp& op, Pred&& pred) {
    clear_soft(op.rank);
    if (pred()) {
      return MpiError::kSuccess;
    }
    // Pre-park yield phase: on an oversubscribed host the peer usually
    // finishes within a timeslice, making the condvar round-trip (two futex
    // syscalls plus a scheduler wakeup) the dominant cost of a wait. The
    // yield count is one schedule-controller decision (the index *is* the
    // count), so record/replay pins the whole phase instead of racing an
    // uncontrolled busy-wait.
    int yields = kParkSpinYields;
    if (schedsim::Controller::armed()) {
      yields = schedsim::Controller::instance().choose(schedsim::Site::kPreParkYield,
                                                       {op.rank, 'h', 0},
                                                       kMaxParkSpinYields + 1, kParkSpinYields);
    }
    for (int i = 0; i < yields; ++i) {
      std::this_thread::yield();
      if (pred()) {
        return MpiError::kSuccess;
      }
    }
    WaiterSlot& slot = hub_->slot(op.rank);
    if (tracker_ == nullptr || tracker_->timeout().count() <= 0) {
      std::uint64_t seen = slot.epoch();
      while (!pred()) {
        seen = slot.wait(seen);
      }
      return MpiError::kSuccess;
    }
    if (tracker_->deadlocked()) {
      return MpiError::kDeadlock;
    }
    tracker_->block(op);
    MpiError result = MpiError::kSuccess;
    std::uint64_t snapshot = tracker_->progress();
    std::uint64_t quiet_since = common::now_ns();
    std::uint64_t seen = slot.epoch();
    while (true) {
      if (pred()) {
        break;
      }
      if (tracker_->deadlocked()) {
        result = MpiError::kDeadlock;
        break;
      }
      const std::uint64_t woke = slot.wait(seen, kWatchdogPoll);
      const bool signalled = woke != seen;
      seen = woke;
      if (pred()) {
        break;
      }
      if (signalled) {
        // Signalled but the predicate is still false: the wakeup was for a
        // different condition (e.g. an unexpected message this rank's recv
        // doesn't match). With the old notify_all engine this was the norm;
        // now it is the exception the counter makes visible.
        detail::bump(*detail::contention_counters().wakeups_spurious);
      }
      if (tracker_->deadlocked()) {
        result = MpiError::kDeadlock;
        break;
      }
      const std::uint64_t progress = tracker_->progress();
      const std::uint64_t now = common::now_ns();
      if (progress != snapshot) {
        snapshot = progress;
        quiet_since = now;
        continue;
      }
      if (now - quiet_since >= timeout_as_ns(tracker_->timeout())) {
        if (tracker_->try_declare(snapshot)) {
          hub_->broadcast(op.rank);  // wake peers so they observe the declaration
          result = MpiError::kDeadlock;
          break;
        }
        // Not a deadlock (some rank is still running); keep waiting.
        quiet_since = now;
      }
    }
    tracker_->unblock(op.rank);
    return result;
  }

  // Unpack a matched message into the posted receive buffer and complete the
  // request. Caller holds the destination mailbox lock.
  void deliver(const Message& msg, const PostedRecv& posted) {
    const std::size_t elem_packed = posted.type.packed_size();
    const std::size_t capacity_elems = posted.count;
    const std::size_t msg_elems = elem_packed != 0 ? msg.payload.size() / elem_packed : 0;
    const bool truncated = msg_elems > capacity_elems;
    const std::size_t deliver_elems = truncated ? capacity_elems : msg_elems;
    posted.type.unpack(msg.payload.data(), deliver_elems, posted.buffer);

    // Signature check over the delivered prefix (MUST's send/recv type
    // matching): the scalar sequences must agree element-wise. A fully
    // byte-typed side (MPI_BYTE/MPI_CHAR) is treated as an untyped view and
    // matches anything of the same byte length.
    const auto all_byte_like = [](const std::vector<Scalar>& sig) {
      for (const Scalar s : sig) {
        if (s != Scalar::kByte && s != Scalar::kChar) {
          return false;
        }
      }
      return true;
    };
    std::vector<Scalar> recv_sig;
    posted.type.signature(deliver_elems, recv_sig);
    bool mismatch = false;
    if (!all_byte_like(recv_sig) && !all_byte_like(msg.signature)) {
      mismatch = recv_sig.size() > msg.signature.size();
      if (!mismatch) {
        for (std::size_t i = 0; i < recv_sig.size(); ++i) {
          if (recv_sig[i] != msg.signature[i]) {
            mismatch = true;
            break;
          }
        }
      }
    }

    CUSAN_ASSERT(posted.request != nullptr);
    publish_status(posted.request,
                   Status{msg.src, msg.tag, deliver_elems * elem_packed,
                          truncated ? MpiError::kTruncate : MpiError::kSuccess, mismatch});
    note_progress();
  }

  int size_;
  std::shared_ptr<ProgressTracker> tracker_;
  int comm_id_;
  std::shared_ptr<WaiterHub> hub_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankLocal> rank_local_;

 public:
  /// The rank's k-th dup call maps to child context k (MPI's same-order
  /// collective-call requirement makes the indices agree across ranks).
  /// Children share the parent's progress tracker AND waiter hub: a
  /// deadlock spanning communicators is still a deadlock of the one world,
  /// and a rank blocked on one communicator must be wakeable from another.
  std::shared_ptr<CommImpl> dup_for_rank(int rank) override {
    std::lock_guard lock(dup_mutex_);
    const std::size_t k = dup_counts_[static_cast<std::size_t>(rank)]++;
    if (k >= children_.size()) {
      children_.push_back(std::make_shared<ThreadCommImpl>(
          size_, tracker_, comm_id_ + static_cast<int>(k) + 1, hub_));
    }
    return children_[k];
  }

 private:
  std::mutex dup_mutex_;
  std::vector<std::size_t> dup_counts_;
  std::vector<std::shared_ptr<ThreadCommImpl>> children_;
};

std::shared_ptr<CommImpl> make_comm_impl(int size) {
  return make_comm_impl(size, nullptr);
}

std::shared_ptr<CommImpl> make_comm_impl(int size, std::shared_ptr<ProgressTracker> tracker) {
  CUSAN_ASSERT(size > 0);
  return std::make_shared<ThreadCommImpl>(size, std::move(tracker), /*comm_id=*/0,
                                          std::make_shared<WaiterHub>(size));
}

// -- Comm: fault-plan consultation -------------------------------------------------

namespace {

/// Probe the fault plan for an outermost MPI call. Returns kSuccess when the
/// call should proceed normally (possibly after a delay); anything else is
/// the error the call must return.
MpiError consult_fault(CommImpl* impl, int rank, faultsim::Site site, const char* op_name,
                       int peer, int tag, bool outermost) {
  if (!outermost || !faultsim::Injector::armed()) {
    return MpiError::kSuccess;
  }
  faultsim::SiteContext where;
  where.rank = rank;
  auto& injector = faultsim::Injector::instance();
  const auto fired = injector.probe(site, where);
  if (!fired) {
    return MpiError::kSuccess;
  }
  switch (fired->action) {
    case faultsim::Action::kDelay:
      std::this_thread::sleep_for(fired->delay);
      return MpiError::kSuccess;
    case faultsim::Action::kStall:
      return impl->stall(rank, op_name, peer, tag, fired->id);
    default:
      injector.mark_surfaced(fired->id, faultsim::Channel::kApiError);
      return MpiError::kOther;
  }
}

/// Rank renumbering relative to a collective's root (MPICH convention):
/// tree algorithms are written for root 0 over relative ranks.
[[nodiscard]] int rel_rank(int rank, int root, int size) { return (rank - root + size) % size; }
[[nodiscard]] int abs_rank(int rel, int root, int size) { return (rel + root) % size; }

/// Largest power of two <= n (n >= 1).
[[nodiscard]] int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) {
    p *= 2;
  }
  return p;
}

/// Count an internal collective-tree message (instrumentation only).
void count_collective_message() {
  detail::bump(*detail::contention_counters().collective_messages);
}

}  // namespace

// -- Comm: point-to-point ---------------------------------------------------------

int Comm::size() const { return impl_ ? impl_->size() : 0; }

bool Comm::deadlock_detected() const { return impl_ != nullptr && impl_->deadlocked(); }

DeadlockReport Comm::deadlock_report() const {
  return impl_ != nullptr ? impl_->deadlock_report() : DeadlockReport{};
}

std::string Comm::failure_summary() const {
  return impl_ != nullptr ? impl_->failure_summary() : std::string{};
}

MpiError Comm::dup(Comm* out) {
  if (out == nullptr) {
    return MpiError::kInvalidArg;
  }
  if (!valid()) {
    return MpiError::kInvalidArg;
  }
  *out = Comm(impl_->dup_for_rank(rank_), rank_);
  return MpiError::kSuccess;
}

MpiError Comm::send(const void* buf, std::size_t count, const Datatype& type, int dest, int tag) {
  OpScope scope("MPI_Send", rank_);
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (!rank_valid(dest)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kSend, "MPI_Send",
                                         dest, tag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  // Eager buffered send: the payload is captured before returning, so the
  // send buffer is reusable immediately (standard-mode semantics).
  return impl_->post_send(rank_, dest, tag, buf, count, type);
}

MpiError Comm::recv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                    Status* status) {
  OpScope scope("MPI_Recv", rank_);
  if (scope.outermost && valid()) {
    if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kRecv, "MPI_Recv",
                                           source, tag, scope.outermost);
        err != MpiError::kSuccess) {
      return err;
    }
  }
  Request* request = nullptr;
  if (const MpiError err = irecv(buf, count, type, source, tag, &request);
      err != MpiError::kSuccess) {
    return err;
  }
  return wait(&request, status);
}

MpiError Comm::isend(const void* buf, std::size_t count, const Datatype& type, int dest, int tag,
                     Request** request) {
  OpScope scope("MPI_Isend", rank_);
  if (request == nullptr) {
    return MpiError::kInvalidArg;
  }
  *request = nullptr;
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (!rank_valid(dest)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kSend, "MPI_Isend",
                                         dest, tag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  Request* req = impl_->make_request(Request::Kind::kSend, buf, count, type, dest, tag);
  const MpiError err = impl_->post_send(rank_, dest, tag, buf, count, type);
  if (err != MpiError::kSuccess) {
    delete req;
    return err;
  }
  // Eager send: complete as soon as the payload is captured.
  impl_->complete_send_request(req, type.packed_size() * count);
  *request = req;
  return MpiError::kSuccess;
}

MpiError Comm::irecv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                     Request** request) {
  OpScope scope("MPI_Irecv", rank_);
  if (request == nullptr) {
    return MpiError::kInvalidArg;
  }
  *request = nullptr;
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (source != kAnySource && !rank_valid(source)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kRecv, "MPI_Irecv",
                                         source, tag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  Request* req = impl_->make_request(Request::Kind::kRecv, buf, count, type, source, tag);
  const MpiError err = impl_->post_recv(rank_, source, tag, buf, count, type, req);
  if (err != MpiError::kSuccess) {
    delete req;
    return err;
  }
  *request = req;
  return MpiError::kSuccess;
}

MpiError Comm::wait(Request** request, Status* status) {
  OpScope scope("MPI_Wait", rank_);
  if (scope.outermost) {
    const int peer = (request != nullptr && *request != nullptr) ? (*request)->peer() : -1;
    const int tag = (request != nullptr && *request != nullptr) ? (*request)->tag() : -1;
    if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kWait, "MPI_Wait",
                                           peer, tag, scope.outermost);
        err != MpiError::kSuccess) {
      return err;
    }
  }
  return impl_->wait(rank_, request, status);
}

MpiError Comm::test(Request** request, bool* completed, Status* status) {
  return impl_->test(rank_, request, completed, status);
}

MpiError Comm::waitany(std::span<Request*> requests, int* index, Status* status) {
  OpScope scope("MPI_Waitany", rank_);
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kWait, "MPI_Waitany",
                                         -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    if (index != nullptr) {
      *index = -1;
    }
    return err;
  }
  return impl_->waitany(rank_, requests, index, status);
}

MpiError Comm::probe(int source, int tag, Status* status) {
  OpScope scope("MPI_Probe", rank_);
  if (!valid() || (source != kAnySource && !rank_valid(source))) {
    return MpiError::kInvalidRank;
  }
  return impl_->probe(rank_, source, tag, /*blocking=*/true, nullptr, status);
}

MpiError Comm::iprobe(int source, int tag, bool* flag, Status* status) {
  if (flag == nullptr) {
    return MpiError::kInvalidArg;
  }
  if (!valid() || (source != kAnySource && !rank_valid(source))) {
    return MpiError::kInvalidRank;
  }
  return impl_->probe(rank_, source, tag, /*blocking=*/false, flag, status);
}

MpiError Comm::waitall(std::span<Request*> requests) {
  OpScope scope("MPI_Waitall", rank_);
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kWait, "MPI_Waitall",
                                         -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  MpiError first_error = MpiError::kSuccess;
  for (Request*& req : requests) {
    if (req == nullptr) {
      continue;
    }
    const MpiError err = wait(&req, nullptr);
    if (err != MpiError::kSuccess && first_error == MpiError::kSuccess) {
      first_error = err;
    }
  }
  return first_error;
}

MpiError Comm::sendrecv(const void* sendbuf, std::size_t sendcount, const Datatype& sendtype,
                        int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                        const Datatype& recvtype, int source, int recvtag, Status* status) {
  OpScope scope("MPI_Sendrecv", rank_);
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kSend,
                                         "MPI_Sendrecv", dest, sendtag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  Request* recv_req = nullptr;
  if (const MpiError err = irecv(recvbuf, recvcount, recvtype, source, recvtag, &recv_req);
      err != MpiError::kSuccess) {
    return err;
  }
  if (const MpiError err = send(sendbuf, sendcount, sendtype, dest, sendtag);
      err != MpiError::kSuccess) {
    (void)wait(&recv_req, nullptr);
    return err;
  }
  return wait(&recv_req, status);
}

// -- Comm: collectives (binomial trees / recursive doubling over internal p2p) -----
//
// All algorithms follow the MPICH formulations over root-relative ranks.
// Messages travel on reserved negative tags, so user traffic (tags >= 0)
// can interleave freely. An error from an inner send/recv (deadlock
// poisoning, injected fault) aborts the tree immediately — peers observe
// the same poisoning through their own blocked calls, exactly as with the
// previous linear algorithms.

MpiError Comm::barrier() {
  OpScope scope("MPI_Barrier", rank_);
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kBarrier,
                                         "MPI_Barrier", -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  // Binomial-tree gather of a token at rank 0, then tree broadcast of the
  // release: 2*log2(P) rounds instead of the old 2*(P-1) at rank 0.
  const Datatype type = Datatype::byte();
  const int world = size();
  std::byte token{};
  int mask = 1;
  while (mask < world) {
    if ((rank_ & mask) != 0) {
      count_collective_message();
      if (const MpiError err = send(&token, 1, type, rank_ ^ mask, kTagBarrierIn);
          err != MpiError::kSuccess) {
        return err;
      }
      break;
    }
    const int child = rank_ | mask;
    if (child < world) {
      if (const MpiError err = recv(&token, 1, type, child, kTagBarrierIn);
          err != MpiError::kSuccess) {
        return err;
      }
    }
    mask <<= 1;
  }
  // Release phase: rank 0 falls through the loop above with mask >= world;
  // everyone else re-enters at the bit it sent on.
  int release_mask = 1;
  while (release_mask < world) {
    if ((rank_ & release_mask) != 0) {
      if (const MpiError err = recv(&token, 1, type, rank_ ^ release_mask, kTagBarrierOut);
          err != MpiError::kSuccess) {
        return err;
      }
      break;
    }
    release_mask <<= 1;
  }
  release_mask >>= 1;
  while (release_mask > 0) {
    if ((rank_ & release_mask) == 0) {
      const int child = rank_ | release_mask;
      if (child < world && child != rank_) {
        count_collective_message();
        if (const MpiError err = send(&token, 1, type, child, kTagBarrierOut);
            err != MpiError::kSuccess) {
          return err;
        }
      }
    }
    release_mask >>= 1;
  }
  return MpiError::kSuccess;
}

MpiError Comm::bcast(void* buf, std::size_t count, const Datatype& type, int root) {
  OpScope scope("MPI_Bcast", rank_);
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Bcast", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  const int world = size();
  const int rel = rel_rank(rank_, root, world);
  // Receive from the parent (the rank that differs at our lowest set bit)…
  int mask = 1;
  while (mask < world) {
    if ((rel & mask) != 0) {
      if (const MpiError err =
              recv(buf, count, type, abs_rank(rel ^ mask, root, world), kTagBcast);
          err != MpiError::kSuccess) {
        return err;
      }
      break;
    }
    mask <<= 1;
  }
  // …then forward to children at all lower bits.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < world) {
      count_collective_message();
      if (const MpiError err =
              send(buf, count, type, abs_rank(rel + mask, root, world), kTagBcast);
          err != MpiError::kSuccess) {
        return err;
      }
    }
    mask >>= 1;
  }
  return MpiError::kSuccess;
}

MpiError Comm::reduce(const void* sendbuf, void* recvbuf, std::size_t count, const Datatype& type,
                      ReduceOp op, int root) {
  OpScope scope("MPI_Reduce", rank_);
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Reduce", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  const int world = size();
  const int rel = rel_rank(rank_, root, world);
  const std::size_t bytes = type.extent() * count;
  // Accumulate child subtree contributions in increasing-bit order (the
  // same association every rank uses, so results are deterministic). The
  // accumulator materializes lazily: a leaf never copies, it just forwards
  // its send buffer.
  const void* acc_read = sendbuf;
  void* acc_mut = nullptr;
  std::vector<std::byte> acc_store;
  std::vector<std::byte> scratch;
  if (rank_ == root && recvbuf != sendbuf) {
    std::memcpy(recvbuf, sendbuf, bytes);
  }
  int mask = 1;
  while (mask < world) {
    if ((rel & mask) != 0) {
      count_collective_message();
      return send(acc_read, count, type, abs_rank(rel ^ mask, root, world), kTagReduce);
    }
    const int child = rel | mask;
    if (child < world) {
      if (scratch.empty()) {
        scratch.resize(bytes);
      }
      if (const MpiError err =
              recv(scratch.data(), count, type, abs_rank(child, root, world), kTagReduce);
          err != MpiError::kSuccess) {
        return err;
      }
      if (acc_mut == nullptr) {
        if (rank_ == root) {
          acc_mut = recvbuf;  // already seeded with sendbuf above
        } else {
          acc_store.assign(static_cast<const std::byte*>(sendbuf),
                           static_cast<const std::byte*>(sendbuf) + bytes);
          acc_mut = acc_store.data();
        }
        acc_read = acc_mut;
      }
      if (!apply_reduce(op, type, count, scratch.data(), acc_mut)) {
        return MpiError::kInvalidArg;
      }
    }
    mask <<= 1;
  }
  // Only rel 0 — the root — falls through; with no children (world == 1)
  // recvbuf already holds sendbuf.
  return MpiError::kSuccess;
}

MpiError Comm::allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                         const Datatype& type, ReduceOp op) {
  OpScope scope("MPI_Allreduce", rank_);
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Allreduce", -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  const int world = size();
  const std::size_t bytes = type.extent() * count;
  if (recvbuf != sendbuf) {
    std::memcpy(recvbuf, sendbuf, bytes);
  }
  if (world == 1) {
    return MpiError::kSuccess;
  }
  // Recursive doubling with the MPICH non-power-of-two pre/post phase: the
  // first 2*rem ranks pair up, odd members absorb their even partner and
  // take part in the log2(pof2) exchange rounds; even members sit out and
  // receive the final result afterwards. Every participating rank applies
  // the reductions in the same order, so all ranks get bitwise-identical
  // results (commutative builtin ops).
  const int pof2 = floor_pow2(world);
  const int rem = world - pof2;
  std::vector<std::byte> scratch(bytes);
  int newrank;
  if (rank_ < 2 * rem) {
    if ((rank_ % 2) == 0) {
      count_collective_message();
      if (const MpiError err = send(recvbuf, count, type, rank_ + 1, kTagAllreduce);
          err != MpiError::kSuccess) {
        return err;
      }
      newrank = -1;
    } else {
      if (const MpiError err = recv(scratch.data(), count, type, rank_ - 1, kTagAllreduce);
          err != MpiError::kSuccess) {
        return err;
      }
      if (!apply_reduce(op, type, count, scratch.data(), recvbuf)) {
        return MpiError::kInvalidArg;
      }
      newrank = rank_ / 2;
    }
  } else {
    newrank = rank_ - rem;
  }
  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int newpeer = newrank ^ mask;
      const int peer = newpeer < rem ? newpeer * 2 + 1 : newpeer + rem;
      count_collective_message();
      if (const MpiError err = send(recvbuf, count, type, peer, kTagAllreduce);
          err != MpiError::kSuccess) {
        return err;
      }
      if (const MpiError err = recv(scratch.data(), count, type, peer, kTagAllreduce);
          err != MpiError::kSuccess) {
        return err;
      }
      if (!apply_reduce(op, type, count, scratch.data(), recvbuf)) {
        return MpiError::kInvalidArg;
      }
    }
  }
  if (rank_ < 2 * rem) {
    if ((rank_ % 2) != 0) {
      count_collective_message();
      return send(recvbuf, count, type, rank_ - 1, kTagAllreduce);
    }
    return recv(recvbuf, count, type, rank_ + 1, kTagAllreduce);
  }
  return MpiError::kSuccess;
}

MpiError Comm::gather(const void* sendbuf, std::size_t count, const Datatype& type,
                      void* recvbuf, int root) {
  OpScope scope("MPI_Gather", rank_);
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Gather", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  const int world = size();
  const std::size_t slot = type.extent() * count;
  if (world == 1) {
    std::memcpy(recvbuf, sendbuf, slot);
    return MpiError::kSuccess;
  }
  // Binomial aggregation needs rank blocks staged contiguously; derived
  // datatypes with holes would be clobbered by that staging, so they take
  // the linear path.
  if (!type.is_contiguous()) {
    if (rank_ != root) {
      count_collective_message();
      return send(sendbuf, count, type, root, kTagGather);
    }
    auto* recv_bytes = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < world; ++r) {
      std::byte* dst = recv_bytes + static_cast<std::size_t>(r) * slot;
      if (r == root) {
        std::memcpy(dst, sendbuf, slot);
        continue;
      }
      if (const MpiError err = recv(dst, count, type, r, kTagGather); err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  const int rel = rel_rank(rank_, root, world);
  // Leaf fast path: a rank with lowest bit set owns only its own block.
  if ((rel & 1) != 0) {
    count_collective_message();
    return send(sendbuf, count, type, abs_rank(rel ^ 1, root, world), kTagGather);
  }
  // Interior ranks stage blocks [rel, rel + subtree) contiguously in
  // relative-rank order; the root with root == 0 can stage directly in
  // recvbuf (relative == absolute there).
  int subtree = 1;
  while ((rel & subtree) == 0 && subtree < world) {
    subtree <<= 1;
  }
  const int max_blocks = std::min(subtree, world - rel);
  const bool direct = rank_ == root && root == 0;
  std::vector<std::byte> staging;
  std::byte* stage;
  if (direct) {
    stage = static_cast<std::byte*>(recvbuf);
  } else {
    staging.resize(static_cast<std::size_t>(max_blocks) * slot);
    stage = staging.data();
  }
  std::memcpy(stage, sendbuf, slot);
  for (int mask = 1; mask < world; mask <<= 1) {
    if ((rel & mask) != 0) {
      const int have = std::min(mask, world - rel);
      count_collective_message();
      return send(stage, count * static_cast<std::size_t>(have), type,
                  abs_rank(rel ^ mask, root, world), kTagGather);
    }
    const int child = rel | mask;
    if (child < world) {
      const int child_blocks = std::min(mask, world - child);
      if (const MpiError err = recv(stage + static_cast<std::size_t>(mask) * slot,
                                    count * static_cast<std::size_t>(child_blocks), type,
                                    abs_rank(child, root, world), kTagGather);
          err != MpiError::kSuccess) {
        return err;
      }
    }
  }
  // Only the root (rel 0) reaches here. Rotate relative-order blocks into
  // absolute rank slots when the staging wasn't done in place.
  if (!direct) {
    auto* recv_bytes = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < world; ++r) {
      std::memcpy(recv_bytes + static_cast<std::size_t>(abs_rank(r, root, world)) * slot,
                  stage + static_cast<std::size_t>(r) * slot, slot);
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::scatter(const void* sendbuf, std::size_t count, const Datatype& type,
                       void* recvbuf, int root) {
  OpScope scope("MPI_Scatter", rank_);
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Scatter", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  const int world = size();
  const std::size_t slot = type.extent() * count;
  if (world == 1) {
    std::memcpy(recvbuf, sendbuf, slot);
    return MpiError::kSuccess;
  }
  if (!type.is_contiguous()) {
    // Linear fallback, mirroring gather: staging multi-block spans would
    // clobber the holes of non-contiguous datatypes.
    if (rank_ != root) {
      return recv(recvbuf, count, type, root, kTagScatter);
    }
    const auto* send_bytes = static_cast<const std::byte*>(sendbuf);
    for (int r = 0; r < world; ++r) {
      const std::byte* src = send_bytes + static_cast<std::size_t>(r) * slot;
      if (r == root) {
        std::memcpy(recvbuf, src, slot);
        continue;
      }
      count_collective_message();
      if (const MpiError err = send(src, count, type, r, kTagScatter); err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  const int rel = rel_rank(rank_, root, world);
  // b: the subtree stride — the distance to the parent for non-roots, the
  // power-of-two ceiling of the world for the root.
  int b = 1;
  if (rel == 0) {
    while (b < world) {
      b <<= 1;
    }
  } else {
    while ((rel & b) == 0) {
      b <<= 1;
    }
  }
  const int span = rel == 0 ? world : std::min(b, world - rel);
  std::vector<std::byte> staging;
  const std::byte* stage;
  if (rel == 0) {
    if (root == 0) {
      stage = static_cast<const std::byte*>(sendbuf);
    } else {
      // Rotate absolute rank slots into relative order once at the root.
      staging.resize(static_cast<std::size_t>(world) * slot);
      const auto* send_bytes = static_cast<const std::byte*>(sendbuf);
      for (int r = 0; r < world; ++r) {
        std::memcpy(staging.data() + static_cast<std::size_t>(r) * slot,
                    send_bytes + static_cast<std::size_t>(abs_rank(r, root, world)) * slot, slot);
      }
      stage = staging.data();
    }
  } else {
    std::byte* dst;
    if (span > 1) {
      staging.resize(static_cast<std::size_t>(span) * slot);
      dst = staging.data();
    } else {
      dst = static_cast<std::byte*>(recvbuf);
    }
    if (const MpiError err = recv(dst, count * static_cast<std::size_t>(span), type,
                                  abs_rank(rel ^ b, root, world), kTagScatter);
        err != MpiError::kSuccess) {
      return err;
    }
    stage = dst;
  }
  for (int mask = b >> 1; mask >= 1; mask >>= 1) {
    const int child = rel | mask;
    if (child > rel && child < world) {
      const int child_span = std::min(mask, world - child);
      count_collective_message();
      if (const MpiError err = send(stage + static_cast<std::size_t>(mask) * slot,
                                    count * static_cast<std::size_t>(child_span), type,
                                    abs_rank(child, root, world), kTagScatter);
          err != MpiError::kSuccess) {
        return err;
      }
    }
  }
  if (rel == 0 || span > 1) {
    std::memcpy(recvbuf, stage, slot);  // own block is the first staged one
  }
  return MpiError::kSuccess;
}

MpiError Comm::allgather(const void* sendbuf, std::size_t count, const Datatype& type,
                         void* recvbuf) {
  OpScope scope("MPI_Allgather", rank_);
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Allgather", -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  const int world = size();
  const std::size_t slot = type.extent() * count;
  const bool pof2 = (world & (world - 1)) == 0;
  if (type.is_contiguous() && pof2 && world > 1) {
    // Recursive doubling: in round k each rank swaps its accumulated 2^k
    // blocks with the partner across bit k, in place in recvbuf.
    auto* base = static_cast<std::byte*>(recvbuf);
    std::memcpy(base + static_cast<std::size_t>(rank_) * slot, sendbuf, slot);
    for (int mask = 1; mask < world; mask <<= 1) {
      const int peer = rank_ ^ mask;
      const int send_base = rank_ & ~(mask - 1);
      const int recv_base = peer & ~(mask - 1);
      count_collective_message();
      if (const MpiError err = send(base + static_cast<std::size_t>(send_base) * slot,
                                    count * static_cast<std::size_t>(mask), type, peer,
                                    kTagAllgather);
          err != MpiError::kSuccess) {
        return err;
      }
      if (const MpiError err = recv(base + static_cast<std::size_t>(recv_base) * slot,
                                    count * static_cast<std::size_t>(mask), type, peer,
                                    kTagAllgather);
          err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  // Non-power-of-two or non-contiguous: binomial gather + tree bcast.
  if (const MpiError err = gather(sendbuf, count, type, recvbuf, 0);
      err != MpiError::kSuccess) {
    return err;
  }
  return bcast(recvbuf, count * static_cast<std::size_t>(world), type, 0);
}

}  // namespace mpisim
