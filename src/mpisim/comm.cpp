#include "mpisim/comm.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "faultsim/injector.hpp"
#include "mpisim/request.hpp"

namespace mpisim {

// Internal tags used by the linear collective implementations. User tags are
// required to be >= 0, so the reserved range can never collide.
namespace {
constexpr int kTagBarrierIn = -100;
constexpr int kTagBarrierOut = -101;
constexpr int kTagBcast = -102;
constexpr int kTagReduce = -103;
constexpr int kTagGather = -104;
constexpr int kTagScatter = -105;

/// How often a blocked thread re-checks the watchdog condition.
constexpr auto kWatchdogPoll = std::chrono::milliseconds(5);
/// Consecutive incomplete Test calls before the rank counts as soft-blocked.
constexpr int kSoftBlockThreshold = 64;

/// The outermost public MPI call executing on this thread. Collectives and
/// blocking receives are built from inner send/recv/wait calls: the label
/// keeps DeadlockReports naming the user-visible operation, and suppresses
/// fault-plan probes on the internal calls (one probe per user call).
thread_local const char* t_op_label = nullptr;

struct OpScope {
  const char* prev;
  bool outermost;
  explicit OpScope(const char* label) : prev(t_op_label), outermost(t_op_label == nullptr) {
    if (outermost) {
      t_op_label = label;
    }
  }
  ~OpScope() { t_op_label = prev; }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
};

[[nodiscard]] const char* current_op_label(const char* fallback) {
  return t_op_label != nullptr ? t_op_label : fallback;
}

}  // namespace

class CommImpl {
 public:
  CommImpl(int size, std::shared_ptr<ProgressTracker> tracker, int comm_id)
      : size_(size),
        tracker_(std::move(tracker)),
        comm_id_(comm_id),
        mailboxes_(static_cast<std::size_t>(size)),
        test_polls_(static_cast<std::size_t>(size), 0),
        soft_blocked_(static_cast<std::size_t>(size), false),
        soft_snapshot_(static_cast<std::size_t>(size), 0),
        soft_quiet_since_(static_cast<std::size_t>(size)),
        dup_counts_(static_cast<std::size_t>(size), 0) {}

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int comm_id() const { return comm_id_; }
  [[nodiscard]] ProgressTracker* tracker() const { return tracker_.get(); }

  [[nodiscard]] bool deadlocked() const {
    return tracker_ != nullptr && tracker_->deadlocked();
  }

  [[nodiscard]] DeadlockReport deadlock_report() const {
    return tracker_ != nullptr ? tracker_->report() : DeadlockReport{};
  }

  MpiError post_send(int src, int dest, int tag, const void* buf, std::size_t count,
                     const Datatype& type) {
    Message msg;
    msg.src = src;
    msg.tag = tag;
    msg.payload.resize(type.packed_size() * count);
    type.pack(buf, count, msg.payload.data());
    type.signature(count, msg.signature);

    std::lock_guard lock(mutex_);
    clear_soft_locked(src);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    // Match the oldest posted receive accepting (src, tag).
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      if (matches(it->source, it->tag, src, tag)) {
        PostedRecv posted = *it;
        box.posted.erase(it);
        deliver(msg, posted);
        cv_.notify_all();
        return MpiError::kSuccess;
      }
    }
    box.unexpected.push_back(std::move(msg));
    note_progress();  // a blocked probe/recv poster may now match
    cv_.notify_all();  // wake blocking probes
    return MpiError::kSuccess;
  }

  MpiError post_recv(int dest, int source, int tag, void* buf, std::size_t count,
                     const Datatype& type, Request* request) {
    PostedRecv posted;
    posted.source = source;
    posted.tag = tag;
    posted.buffer = buf;
    posted.count = count;
    posted.type = type;
    posted.request = request;

    std::lock_guard lock(mutex_);
    clear_soft_locked(dest);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
      if (matches(source, tag, it->src, it->tag)) {
        Message msg = std::move(*it);
        box.unexpected.erase(it);
        deliver(msg, posted);
        cv_.notify_all();
        return MpiError::kSuccess;
      }
    }
    box.posted.push_back(posted);
    return MpiError::kSuccess;
  }

  MpiError wait(int rank, Request** request, Status* status) {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    std::unique_lock lock(mutex_);
    BlockedOp op;
    op.rank = rank;
    op.op = current_op_label("MPI_Wait");
    op.peer = req->peer_;
    op.tag = req->tag_;
    op.comm_id = comm_id_;
    const MpiError blocked =
        blocked_wait(lock, [req] { return req->complete_; }, op);
    if (blocked != MpiError::kSuccess) {
      // Deadlock: the request stays pending (it can never complete); MUST's
      // finalize-time leak check will see and report it.
      if (status != nullptr) {
        *status = Status{};
        status->error = blocked;
      }
      return blocked;
    }
    const Status st = req->status_;
    lock.unlock();
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  MpiError test(int rank, Request** request, bool* completed, Status* status) {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    std::unique_lock lock(mutex_);
    if (!req->complete_) {
      if (completed != nullptr) {
        *completed = false;
      }
      if (deadlocked()) {
        return MpiError::kDeadlock;
      }
      // A rank spinning on an incomplete Test cannot make progress by
      // itself: after a burst of fruitless polls it counts as (soft)
      // blocked so a Test-polling rank doesn't mask a deadlock forever.
      if (tracker_ != nullptr &&
          ++test_polls_[static_cast<std::size_t>(rank)] >= kSoftBlockThreshold) {
        if (!soft_blocked_[static_cast<std::size_t>(rank)]) {
          BlockedOp op;
          op.rank = rank;
          op.op = current_op_label("MPI_Test");
          op.peer = req->peer_;
          op.tag = req->tag_;
          op.comm_id = comm_id_;
          tracker_->soft_block(op);
          soft_blocked_[static_cast<std::size_t>(rank)] = true;
          soft_snapshot_[static_cast<std::size_t>(rank)] = tracker_->progress();
          soft_quiet_since_[static_cast<std::size_t>(rank)] = std::chrono::steady_clock::now();
        } else if (tracker_->timeout().count() > 0) {
          // A soft-blocked rank may be the only live thread (everyone else
          // hard-blocked or exited): it must drive declaration itself, or an
          // all-Test-polling deadlock would spin forever.
          const std::uint64_t progress = tracker_->progress();
          const auto now = std::chrono::steady_clock::now();
          auto& snapshot = soft_snapshot_[static_cast<std::size_t>(rank)];
          auto& quiet_since = soft_quiet_since_[static_cast<std::size_t>(rank)];
          if (progress != snapshot) {
            snapshot = progress;
            quiet_since = now;
          } else if (now - quiet_since >= tracker_->timeout()) {
            if (tracker_->try_declare(snapshot)) {
              cv_.notify_all();
              return MpiError::kDeadlock;
            }
            quiet_since = now;
          }
        }
      }
      return MpiError::kSuccess;
    }
    clear_soft_locked(rank);
    const Status st = req->status_;
    lock.unlock();
    if (completed != nullptr) {
      *completed = true;
    }
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  [[nodiscard]] Request* make_request(Request::Kind kind, const void* buf, std::size_t count,
                                      const Datatype& type, int peer, int tag) {
    return new Request(kind, buf, count, type, peer, tag);
  }

  MpiError waitany(int rank, std::span<Request*> requests, int* index, Status* status) {
    if (index == nullptr) {
      return MpiError::kInvalidArg;
    }
    *index = -1;
    const Request* first_pending = nullptr;
    bool any = false;
    for (const Request* req : requests) {
      any = any || req != nullptr;
      if (first_pending == nullptr && req != nullptr) {
        first_pending = req;
      }
    }
    if (!any) {
      return MpiError::kRequestNull;
    }
    {
      std::unique_lock lock(mutex_);
      BlockedOp op;
      op.rank = rank;
      op.op = current_op_label("MPI_Waitany");
      op.peer = first_pending->peer_;
      op.tag = first_pending->tag_;
      op.comm_id = comm_id_;
      const MpiError blocked = blocked_wait(
          lock,
          [&] {
            for (std::size_t i = 0; i < requests.size(); ++i) {
              if (requests[i] != nullptr && requests[i]->complete_) {
                *index = static_cast<int>(i);
                return true;
              }
            }
            return false;
          },
          op);
      if (blocked != MpiError::kSuccess) {
        if (status != nullptr) {
          *status = Status{};
          status->error = blocked;
        }
        return blocked;
      }
    }
    return wait(rank, &requests[static_cast<std::size_t>(*index)], status);
  }

  MpiError probe(int rank, int source, int tag, bool blocking, bool* flag, Status* status) {
    std::unique_lock lock(mutex_);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
    const auto find_match = [&]() -> const Message* {
      for (const Message& msg : box.unexpected) {
        if (matches(source, tag, msg.src, msg.tag)) {
          return &msg;
        }
      }
      return nullptr;
    };
    const Message* msg = find_match();
    if (!blocking) {
      if (flag != nullptr) {
        *flag = msg != nullptr;
      }
    } else if (msg == nullptr) {
      BlockedOp op;
      op.rank = rank;
      op.op = current_op_label("MPI_Probe");
      op.peer = source;
      op.tag = tag;
      op.comm_id = comm_id_;
      const MpiError blocked = blocked_wait(
          lock,
          [&] {
            msg = find_match();
            return msg != nullptr;
          },
          op);
      if (blocked != MpiError::kSuccess) {
        if (status != nullptr) {
          *status = Status{};
          status->error = blocked;
        }
        return blocked;
      }
    }
    if (msg != nullptr && status != nullptr) {
      *status = Status{msg->src, msg->tag, msg->payload.size(), MpiError::kSuccess};
    }
    return MpiError::kSuccess;
  }

  void complete_send_request(Request* req, std::size_t bytes) {
    std::lock_guard lock(mutex_);
    req->complete_ = true;
    req->status_ = Status{-1, -1, bytes, MpiError::kSuccess};
    note_progress();
    cv_.notify_all();
  }

  /// An injected `stall` fault: park the calling rank as if the operation
  /// never completed, until the watchdog declares a deadlock. With no
  /// tracker the stall degrades to a synchronous failure (no hang).
  MpiError stall(int rank, const char* op_name, int peer, int tag, std::uint64_t fault_id) {
    auto& injector = faultsim::Injector::instance();
    {
      std::unique_lock lock(mutex_);
      if (tracker_ != nullptr && tracker_->timeout().count() > 0) {
        BlockedOp op;
        op.rank = rank;
        op.op = std::string(op_name) + " [stalled by fault plan]";
        op.peer = peer;
        op.tag = tag;
        op.comm_id = comm_id_;
        const MpiError err = blocked_wait(lock, [] { return false; }, op);
        injector.mark_surfaced(fault_id, faultsim::Channel::kDeadlockReport);
        return err;
      }
    }
    injector.mark_surfaced(fault_id, faultsim::Channel::kApiError);
    return MpiError::kOther;
  }

 private:
  struct Message {
    int src{};
    int tag{};
    std::vector<std::byte> payload;   ///< packed representation
    std::vector<Scalar> signature;    ///< sender's type signature (MUST metadata)
  };

  struct PostedRecv {
    int source{};
    int tag{};
    void* buffer{};
    std::size_t count{};
    Datatype type;
    Request* request{};  ///< completion target
  };

  struct Mailbox {
    std::deque<Message> unexpected;
    std::deque<PostedRecv> posted;
  };

  [[nodiscard]] static bool matches(int want_src, int want_tag, int src, int tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  void note_progress() {
    if (tracker_ != nullptr) {
      tracker_->note_progress();
    }
  }

  /// Reset the rank's Test-poll streak (and soft-block registration): the
  /// rank just made or observed progress, or entered a real blocking call.
  /// Caller holds mutex_.
  void clear_soft_locked(int rank) {
    if (rank < 0 || rank >= size_) {
      return;
    }
    test_polls_[static_cast<std::size_t>(rank)] = 0;
    if (soft_blocked_[static_cast<std::size_t>(rank)]) {
      soft_blocked_[static_cast<std::size_t>(rank)] = false;
      if (tracker_ != nullptr) {
        tracker_->soft_unblock(rank);
      }
    }
  }

  /// Block on cv_ until `pred` holds, participating in the progress
  /// watchdog: the blocked op is registered, the wait polls, and when every
  /// live rank is blocked with no progress for the timeout the wait returns
  /// kDeadlock instead of hanging. Caller holds `lock` on mutex_.
  MpiError blocked_wait(std::unique_lock<std::mutex>& lock, const std::function<bool()>& pred,
                        const BlockedOp& op) {
    clear_soft_locked(op.rank);
    if (pred()) {
      return MpiError::kSuccess;
    }
    if (tracker_ == nullptr || tracker_->timeout().count() <= 0) {
      cv_.wait(lock, pred);
      return MpiError::kSuccess;
    }
    if (tracker_->deadlocked()) {
      return MpiError::kDeadlock;
    }
    tracker_->block(op);
    MpiError result = MpiError::kSuccess;
    std::uint64_t snapshot = tracker_->progress();
    auto quiet_since = std::chrono::steady_clock::now();
    while (true) {
      if (pred()) {
        break;
      }
      if (tracker_->deadlocked()) {
        result = MpiError::kDeadlock;
        break;
      }
      cv_.wait_for(lock, kWatchdogPoll);
      if (pred()) {
        break;
      }
      if (tracker_->deadlocked()) {
        result = MpiError::kDeadlock;
        break;
      }
      const std::uint64_t progress = tracker_->progress();
      const auto now = std::chrono::steady_clock::now();
      if (progress != snapshot) {
        snapshot = progress;
        quiet_since = now;
        continue;
      }
      if (now - quiet_since >= tracker_->timeout()) {
        if (tracker_->try_declare(snapshot)) {
          cv_.notify_all();  // wake peers so they observe the declaration
          result = MpiError::kDeadlock;
          break;
        }
        // Not a deadlock (some rank is still running); keep waiting.
        quiet_since = now;
      }
    }
    tracker_->unblock(op.rank);
    return result;
  }

  // Unpack a matched message into the posted receive buffer and complete the
  // request. Caller holds mutex_.
  void deliver(const Message& msg, const PostedRecv& posted) {
    const std::size_t elem_packed = posted.type.packed_size();
    const std::size_t capacity_elems = posted.count;
    const std::size_t msg_elems = elem_packed != 0 ? msg.payload.size() / elem_packed : 0;
    const bool truncated = msg_elems > capacity_elems;
    const std::size_t deliver_elems = truncated ? capacity_elems : msg_elems;
    posted.type.unpack(msg.payload.data(), deliver_elems, posted.buffer);

    // Signature check over the delivered prefix (MUST's send/recv type
    // matching): the scalar sequences must agree element-wise. A fully
    // byte-typed side (MPI_BYTE/MPI_CHAR) is treated as an untyped view and
    // matches anything of the same byte length.
    const auto all_byte_like = [](const std::vector<Scalar>& sig) {
      for (const Scalar s : sig) {
        if (s != Scalar::kByte && s != Scalar::kChar) {
          return false;
        }
      }
      return true;
    };
    std::vector<Scalar> recv_sig;
    posted.type.signature(deliver_elems, recv_sig);
    bool mismatch = false;
    if (!all_byte_like(recv_sig) && !all_byte_like(msg.signature)) {
      mismatch = recv_sig.size() > msg.signature.size();
      if (!mismatch) {
        for (std::size_t i = 0; i < recv_sig.size(); ++i) {
          if (recv_sig[i] != msg.signature[i]) {
            mismatch = true;
            break;
          }
        }
      }
    }

    CUSAN_ASSERT(posted.request != nullptr);
    posted.request->complete_ = true;
    posted.request->status_ =
        Status{msg.src, msg.tag, deliver_elems * elem_packed,
               truncated ? MpiError::kTruncate : MpiError::kSuccess, mismatch};
    note_progress();
  }

  int size_;
  std::shared_ptr<ProgressTracker> tracker_;
  int comm_id_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Mailbox> mailboxes_;
  std::vector<int> test_polls_;      ///< consecutive incomplete Test calls per rank
  std::vector<bool> soft_blocked_;   ///< rank currently registered soft-blocked
  std::vector<std::uint64_t> soft_snapshot_;  ///< progress snapshot at soft-block time
  std::vector<std::chrono::steady_clock::time_point> soft_quiet_since_;
  // NOLINTNEXTLINE: members above guarded by mutex_

 public:
  /// The rank's k-th dup call maps to child context k (MPI's same-order
  /// collective-call requirement makes the indices agree across ranks).
  /// Children share the parent's progress tracker: a deadlock spanning
  /// communicators is still a deadlock of the one world.
  std::shared_ptr<CommImpl> dup_for_rank(int rank) {
    std::lock_guard lock(dup_mutex_);
    const std::size_t k = dup_counts_[static_cast<std::size_t>(rank)]++;
    if (k >= children_.size()) {
      children_.push_back(
          std::make_shared<CommImpl>(size_, tracker_, comm_id_ + static_cast<int>(k) + 1));
    }
    return children_[k];
  }

 private:
  std::mutex dup_mutex_;
  std::vector<std::size_t> dup_counts_;
  std::vector<std::shared_ptr<CommImpl>> children_;
};

std::shared_ptr<CommImpl> make_comm_impl(int size) {
  return make_comm_impl(size, nullptr);
}

std::shared_ptr<CommImpl> make_comm_impl(int size, std::shared_ptr<ProgressTracker> tracker) {
  CUSAN_ASSERT(size > 0);
  return std::make_shared<CommImpl>(size, std::move(tracker), /*comm_id=*/0);
}

// -- Comm: fault-plan consultation -------------------------------------------------

namespace {

/// Probe the fault plan for an outermost MPI call. Returns kSuccess when the
/// call should proceed normally (possibly after a delay); anything else is
/// the error the call must return.
MpiError consult_fault(CommImpl* impl, int rank, faultsim::Site site, const char* op_name,
                       int peer, int tag, bool outermost) {
  if (!outermost || !faultsim::Injector::armed()) {
    return MpiError::kSuccess;
  }
  faultsim::SiteContext where;
  where.rank = rank;
  auto& injector = faultsim::Injector::instance();
  const auto fired = injector.probe(site, where);
  if (!fired) {
    return MpiError::kSuccess;
  }
  switch (fired->action) {
    case faultsim::Action::kDelay:
      std::this_thread::sleep_for(fired->delay);
      return MpiError::kSuccess;
    case faultsim::Action::kStall:
      return impl->stall(rank, op_name, peer, tag, fired->id);
    default:
      injector.mark_surfaced(fired->id, faultsim::Channel::kApiError);
      return MpiError::kOther;
  }
}

}  // namespace

// -- Comm: point-to-point ---------------------------------------------------------

int Comm::size() const { return impl_ ? impl_->size() : 0; }

bool Comm::deadlock_detected() const { return impl_ != nullptr && impl_->deadlocked(); }

DeadlockReport Comm::deadlock_report() const {
  return impl_ != nullptr ? impl_->deadlock_report() : DeadlockReport{};
}

MpiError Comm::dup(Comm* out) {
  if (out == nullptr) {
    return MpiError::kInvalidArg;
  }
  if (!valid()) {
    return MpiError::kInvalidArg;
  }
  *out = Comm(impl_->dup_for_rank(rank_), rank_);
  return MpiError::kSuccess;
}

MpiError Comm::send(const void* buf, std::size_t count, const Datatype& type, int dest, int tag) {
  OpScope scope("MPI_Send");
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (!rank_valid(dest)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kSend, "MPI_Send",
                                         dest, tag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  // Eager buffered send: the payload is captured before returning, so the
  // send buffer is reusable immediately (standard-mode semantics).
  return impl_->post_send(rank_, dest, tag, buf, count, type);
}

MpiError Comm::recv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                    Status* status) {
  OpScope scope("MPI_Recv");
  if (scope.outermost && valid()) {
    if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kRecv, "MPI_Recv",
                                           source, tag, scope.outermost);
        err != MpiError::kSuccess) {
      return err;
    }
  }
  Request* request = nullptr;
  if (const MpiError err = irecv(buf, count, type, source, tag, &request);
      err != MpiError::kSuccess) {
    return err;
  }
  return wait(&request, status);
}

MpiError Comm::isend(const void* buf, std::size_t count, const Datatype& type, int dest, int tag,
                     Request** request) {
  OpScope scope("MPI_Isend");
  if (request == nullptr) {
    return MpiError::kInvalidArg;
  }
  *request = nullptr;
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (!rank_valid(dest)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kSend, "MPI_Isend",
                                         dest, tag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  Request* req = impl_->make_request(Request::Kind::kSend, buf, count, type, dest, tag);
  const MpiError err = impl_->post_send(rank_, dest, tag, buf, count, type);
  if (err != MpiError::kSuccess) {
    delete req;
    return err;
  }
  // Eager send: complete as soon as the payload is captured.
  impl_->complete_send_request(req, type.packed_size() * count);
  *request = req;
  return MpiError::kSuccess;
}

MpiError Comm::irecv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                     Request** request) {
  OpScope scope("MPI_Irecv");
  if (request == nullptr) {
    return MpiError::kInvalidArg;
  }
  *request = nullptr;
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (source != kAnySource && !rank_valid(source)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kRecv, "MPI_Irecv",
                                         source, tag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  Request* req = impl_->make_request(Request::Kind::kRecv, buf, count, type, source, tag);
  const MpiError err = impl_->post_recv(rank_, source, tag, buf, count, type, req);
  if (err != MpiError::kSuccess) {
    delete req;
    return err;
  }
  *request = req;
  return MpiError::kSuccess;
}

MpiError Comm::wait(Request** request, Status* status) {
  OpScope scope("MPI_Wait");
  if (scope.outermost) {
    const int peer = (request != nullptr && *request != nullptr) ? (*request)->peer() : -1;
    const int tag = (request != nullptr && *request != nullptr) ? (*request)->tag() : -1;
    if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kWait, "MPI_Wait",
                                           peer, tag, scope.outermost);
        err != MpiError::kSuccess) {
      return err;
    }
  }
  return impl_->wait(rank_, request, status);
}

MpiError Comm::test(Request** request, bool* completed, Status* status) {
  return impl_->test(rank_, request, completed, status);
}

MpiError Comm::waitany(std::span<Request*> requests, int* index, Status* status) {
  OpScope scope("MPI_Waitany");
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kWait, "MPI_Waitany",
                                         -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    if (index != nullptr) {
      *index = -1;
    }
    return err;
  }
  return impl_->waitany(rank_, requests, index, status);
}

MpiError Comm::probe(int source, int tag, Status* status) {
  OpScope scope("MPI_Probe");
  if (!valid() || (source != kAnySource && !rank_valid(source))) {
    return MpiError::kInvalidRank;
  }
  return impl_->probe(rank_, source, tag, /*blocking=*/true, nullptr, status);
}

MpiError Comm::iprobe(int source, int tag, bool* flag, Status* status) {
  if (flag == nullptr) {
    return MpiError::kInvalidArg;
  }
  if (!valid() || (source != kAnySource && !rank_valid(source))) {
    return MpiError::kInvalidRank;
  }
  return impl_->probe(rank_, source, tag, /*blocking=*/false, flag, status);
}

MpiError Comm::waitall(std::span<Request*> requests) {
  OpScope scope("MPI_Waitall");
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kWait, "MPI_Waitall",
                                         -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  MpiError first_error = MpiError::kSuccess;
  for (Request*& req : requests) {
    if (req == nullptr) {
      continue;
    }
    const MpiError err = wait(&req, nullptr);
    if (err != MpiError::kSuccess && first_error == MpiError::kSuccess) {
      first_error = err;
    }
  }
  return first_error;
}

MpiError Comm::sendrecv(const void* sendbuf, std::size_t sendcount, const Datatype& sendtype,
                        int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                        const Datatype& recvtype, int source, int recvtag, Status* status) {
  OpScope scope("MPI_Sendrecv");
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kSend,
                                         "MPI_Sendrecv", dest, sendtag, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  Request* recv_req = nullptr;
  if (const MpiError err = irecv(recvbuf, recvcount, recvtype, source, recvtag, &recv_req);
      err != MpiError::kSuccess) {
    return err;
  }
  if (const MpiError err = send(sendbuf, sendcount, sendtype, dest, sendtag);
      err != MpiError::kSuccess) {
    (void)wait(&recv_req, nullptr);
    return err;
  }
  return wait(&recv_req, status);
}

// -- Comm: collectives (linear algorithms over internal p2p) -----------------------

MpiError Comm::barrier() {
  OpScope scope("MPI_Barrier");
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kBarrier,
                                         "MPI_Barrier", -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  // Gather a token at rank 0, then broadcast the release.
  const Datatype type = Datatype::byte();
  std::byte token{};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      if (const MpiError err = recv(&token, 1, type, r, kTagBarrierIn); err != MpiError::kSuccess) {
        return err;
      }
    }
    for (int r = 1; r < size(); ++r) {
      if (const MpiError err = send(&token, 1, type, r, kTagBarrierOut);
          err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  if (const MpiError err = send(&token, 1, type, 0, kTagBarrierIn); err != MpiError::kSuccess) {
    return err;
  }
  return recv(&token, 1, type, 0, kTagBarrierOut);
}

MpiError Comm::bcast(void* buf, std::size_t count, const Datatype& type, int root) {
  OpScope scope("MPI_Bcast");
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Bcast", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        continue;
      }
      if (const MpiError err = send(buf, count, type, r, kTagBcast); err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  return recv(buf, count, type, root, kTagBcast);
}

MpiError Comm::reduce(const void* sendbuf, void* recvbuf, std::size_t count, const Datatype& type,
                      ReduceOp op, int root) {
  OpScope scope("MPI_Reduce");
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Reduce", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  if (rank_ != root) {
    return send(sendbuf, count, type, root, kTagReduce);
  }
  if (recvbuf != sendbuf) {
    std::memcpy(recvbuf, sendbuf, type.extent() * count);
  }
  std::vector<std::byte> scratch(type.extent() * count);
  for (int r = 0; r < size(); ++r) {
    if (r == root) {
      continue;
    }
    if (const MpiError err = recv(scratch.data(), count, type, r, kTagReduce);
        err != MpiError::kSuccess) {
      return err;
    }
    if (!apply_reduce(op, type, count, scratch.data(), recvbuf)) {
      return MpiError::kInvalidArg;
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                         const Datatype& type, ReduceOp op) {
  OpScope scope("MPI_Allreduce");
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Allreduce", -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  if (const MpiError err = reduce(sendbuf, recvbuf, count, type, op, 0);
      err != MpiError::kSuccess) {
    return err;
  }
  return bcast(recvbuf, count, type, 0);
}

MpiError Comm::gather(const void* sendbuf, std::size_t count, const Datatype& type,
                      void* recvbuf, int root) {
  OpScope scope("MPI_Gather");
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Gather", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  if (rank_ != root) {
    return send(sendbuf, count, type, root, kTagGather);
  }
  auto* recv_bytes = static_cast<std::byte*>(recvbuf);
  const std::size_t slot = type.extent() * count;
  for (int r = 0; r < size(); ++r) {
    std::byte* dst = recv_bytes + static_cast<std::size_t>(r) * slot;
    if (r == root) {
      std::memcpy(dst, sendbuf, slot);
      continue;
    }
    if (const MpiError err = recv(dst, count, type, r, kTagGather); err != MpiError::kSuccess) {
      return err;
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::scatter(const void* sendbuf, std::size_t count, const Datatype& type,
                       void* recvbuf, int root) {
  OpScope scope("MPI_Scatter");
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Scatter", root, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  if (rank_ != root) {
    return recv(recvbuf, count, type, root, kTagScatter);
  }
  const auto* send_bytes = static_cast<const std::byte*>(sendbuf);
  const std::size_t slot = type.extent() * count;
  for (int r = 0; r < size(); ++r) {
    const std::byte* src = send_bytes + static_cast<std::size_t>(r) * slot;
    if (r == root) {
      std::memcpy(recvbuf, src, slot);
      continue;
    }
    if (const MpiError err = send(src, count, type, r, kTagScatter); err != MpiError::kSuccess) {
      return err;
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::allgather(const void* sendbuf, std::size_t count, const Datatype& type,
                         void* recvbuf) {
  OpScope scope("MPI_Allgather");
  if (const MpiError err = consult_fault(impl_.get(), rank_, faultsim::Site::kCollective,
                                         "MPI_Allgather", -1, -1, scope.outermost);
      err != MpiError::kSuccess) {
    return err;
  }
  if (const MpiError err = gather(sendbuf, count, type, recvbuf, 0);
      err != MpiError::kSuccess) {
    return err;
  }
  // Broadcast the assembled result.
  return bcast(recvbuf, count * static_cast<std::size_t>(size()), type, 0);
}

}  // namespace mpisim
