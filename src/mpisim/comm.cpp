#include "mpisim/comm.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "mpisim/request.hpp"

namespace mpisim {

// Internal tags used by the linear collective implementations. User tags are
// required to be >= 0, so the reserved range can never collide.
namespace {
constexpr int kTagBarrierIn = -100;
constexpr int kTagBarrierOut = -101;
constexpr int kTagBcast = -102;
constexpr int kTagReduce = -103;
constexpr int kTagGather = -104;
constexpr int kTagScatter = -105;
}  // namespace

class CommImpl {
 public:
  explicit CommImpl(int size)
      : size_(size),
        mailboxes_(static_cast<std::size_t>(size)),
        dup_counts_(static_cast<std::size_t>(size), 0) {}

  [[nodiscard]] int size() const { return size_; }

  MpiError post_send(int src, int dest, int tag, const void* buf, std::size_t count,
                     const Datatype& type) {
    Message msg;
    msg.src = src;
    msg.tag = tag;
    msg.payload.resize(type.packed_size() * count);
    type.pack(buf, count, msg.payload.data());
    type.signature(count, msg.signature);

    std::lock_guard lock(mutex_);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    // Match the oldest posted receive accepting (src, tag).
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      if (matches(it->source, it->tag, src, tag)) {
        PostedRecv posted = *it;
        box.posted.erase(it);
        deliver(msg, posted);
        cv_.notify_all();
        return MpiError::kSuccess;
      }
    }
    box.unexpected.push_back(std::move(msg));
    cv_.notify_all();  // wake blocking probes
    return MpiError::kSuccess;
  }

  MpiError post_recv(int dest, int source, int tag, void* buf, std::size_t count,
                     const Datatype& type, Request* request) {
    PostedRecv posted;
    posted.source = source;
    posted.tag = tag;
    posted.buffer = buf;
    posted.count = count;
    posted.type = type;
    posted.request = request;

    std::lock_guard lock(mutex_);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
      if (matches(source, tag, it->src, it->tag)) {
        Message msg = std::move(*it);
        box.unexpected.erase(it);
        deliver(msg, posted);
        cv_.notify_all();
        return MpiError::kSuccess;
      }
    }
    box.posted.push_back(posted);
    return MpiError::kSuccess;
  }

  MpiError wait(Request** request, Status* status) {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [req] { return req->complete_; });
    const Status st = req->status_;
    lock.unlock();
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  MpiError test(Request** request, bool* completed, Status* status) {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    std::unique_lock lock(mutex_);
    if (!req->complete_) {
      if (completed != nullptr) {
        *completed = false;
      }
      return MpiError::kSuccess;
    }
    const Status st = req->status_;
    lock.unlock();
    if (completed != nullptr) {
      *completed = true;
    }
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  [[nodiscard]] Request* make_request(Request::Kind kind, const void* buf, std::size_t count,
                                      const Datatype& type) {
    return new Request(kind, buf, count, type);
  }

  MpiError waitany(std::span<Request*> requests, int* index, Status* status) {
    if (index == nullptr) {
      return MpiError::kInvalidArg;
    }
    *index = -1;
    bool any = false;
    for (const Request* req : requests) {
      any = any || req != nullptr;
    }
    if (!any) {
      return MpiError::kRequestNull;
    }
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (requests[i] != nullptr && requests[i]->complete_) {
            *index = static_cast<int>(i);
            return true;
          }
        }
        return false;
      });
    }
    return wait(&requests[static_cast<std::size_t>(*index)], status);
  }

  MpiError probe(int rank, int source, int tag, bool blocking, bool* flag, Status* status) {
    std::unique_lock lock(mutex_);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
    const auto find_match = [&]() -> const Message* {
      for (const Message& msg : box.unexpected) {
        if (matches(source, tag, msg.src, msg.tag)) {
          return &msg;
        }
      }
      return nullptr;
    };
    const Message* msg = find_match();
    if (!blocking) {
      if (flag != nullptr) {
        *flag = msg != nullptr;
      }
    } else {
      cv_.wait(lock, [&] {
        msg = find_match();
        return msg != nullptr;
      });
    }
    if (msg != nullptr && status != nullptr) {
      *status = Status{msg->src, msg->tag, msg->payload.size(), MpiError::kSuccess};
    }
    return MpiError::kSuccess;
  }

  void complete_send_request(Request* req, std::size_t bytes) {
    std::lock_guard lock(mutex_);
    req->complete_ = true;
    req->status_ = Status{-1, -1, bytes, MpiError::kSuccess};
    cv_.notify_all();
  }

 private:
  struct Message {
    int src{};
    int tag{};
    std::vector<std::byte> payload;   ///< packed representation
    std::vector<Scalar> signature;    ///< sender's type signature (MUST metadata)
  };

  struct PostedRecv {
    int source{};
    int tag{};
    void* buffer{};
    std::size_t count{};
    Datatype type;
    Request* request{};  ///< completion target
  };

  struct Mailbox {
    std::deque<Message> unexpected;
    std::deque<PostedRecv> posted;
  };

  [[nodiscard]] static bool matches(int want_src, int want_tag, int src, int tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  // Unpack a matched message into the posted receive buffer and complete the
  // request. Caller holds mutex_.
  void deliver(const Message& msg, const PostedRecv& posted) {
    const std::size_t elem_packed = posted.type.packed_size();
    const std::size_t capacity_elems = posted.count;
    const std::size_t msg_elems = elem_packed != 0 ? msg.payload.size() / elem_packed : 0;
    const bool truncated = msg_elems > capacity_elems;
    const std::size_t deliver_elems = truncated ? capacity_elems : msg_elems;
    posted.type.unpack(msg.payload.data(), deliver_elems, posted.buffer);

    // Signature check over the delivered prefix (MUST's send/recv type
    // matching): the scalar sequences must agree element-wise. A fully
    // byte-typed side (MPI_BYTE/MPI_CHAR) is treated as an untyped view and
    // matches anything of the same byte length.
    const auto all_byte_like = [](const std::vector<Scalar>& sig) {
      for (const Scalar s : sig) {
        if (s != Scalar::kByte && s != Scalar::kChar) {
          return false;
        }
      }
      return true;
    };
    std::vector<Scalar> recv_sig;
    posted.type.signature(deliver_elems, recv_sig);
    bool mismatch = false;
    if (!all_byte_like(recv_sig) && !all_byte_like(msg.signature)) {
      mismatch = recv_sig.size() > msg.signature.size();
      if (!mismatch) {
        for (std::size_t i = 0; i < recv_sig.size(); ++i) {
          if (recv_sig[i] != msg.signature[i]) {
            mismatch = true;
            break;
          }
        }
      }
    }

    CUSAN_ASSERT(posted.request != nullptr);
    posted.request->complete_ = true;
    posted.request->status_ =
        Status{msg.src, msg.tag, deliver_elems * elem_packed,
               truncated ? MpiError::kTruncate : MpiError::kSuccess, mismatch};
  }

  int size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Mailbox> mailboxes_;

 public:
  /// The rank's k-th dup call maps to child context k (MPI's same-order
  /// collective-call requirement makes the indices agree across ranks).
  std::shared_ptr<CommImpl> dup_for_rank(int rank) {
    std::lock_guard lock(dup_mutex_);
    const std::size_t k = dup_counts_[static_cast<std::size_t>(rank)]++;
    if (k >= children_.size()) {
      children_.push_back(std::make_shared<CommImpl>(size_));
    }
    return children_[k];
  }

 private:
  std::mutex dup_mutex_;
  std::vector<std::size_t> dup_counts_;
  std::vector<std::shared_ptr<CommImpl>> children_;
};

std::shared_ptr<CommImpl> make_comm_impl(int size) {
  CUSAN_ASSERT(size > 0);
  return std::make_shared<CommImpl>(size);
}

// -- Comm: point-to-point ---------------------------------------------------------

int Comm::size() const { return impl_ ? impl_->size() : 0; }

MpiError Comm::dup(Comm* out) {
  if (out == nullptr) {
    return MpiError::kInvalidArg;
  }
  if (!valid()) {
    return MpiError::kInvalidArg;
  }
  *out = Comm(impl_->dup_for_rank(rank_), rank_);
  return MpiError::kSuccess;
}

MpiError Comm::send(const void* buf, std::size_t count, const Datatype& type, int dest, int tag) {
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (!rank_valid(dest)) {
    return MpiError::kInvalidRank;
  }
  // Eager buffered send: the payload is captured before returning, so the
  // send buffer is reusable immediately (standard-mode semantics).
  return impl_->post_send(rank_, dest, tag, buf, count, type);
}

MpiError Comm::recv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                    Status* status) {
  Request* request = nullptr;
  if (const MpiError err = irecv(buf, count, type, source, tag, &request);
      err != MpiError::kSuccess) {
    return err;
  }
  return wait(&request, status);
}

MpiError Comm::isend(const void* buf, std::size_t count, const Datatype& type, int dest, int tag,
                     Request** request) {
  if (request == nullptr) {
    return MpiError::kInvalidArg;
  }
  *request = nullptr;
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (!rank_valid(dest)) {
    return MpiError::kInvalidRank;
  }
  Request* req = impl_->make_request(Request::Kind::kSend, buf, count, type);
  const MpiError err = impl_->post_send(rank_, dest, tag, buf, count, type);
  if (err != MpiError::kSuccess) {
    delete req;
    return err;
  }
  // Eager send: complete as soon as the payload is captured.
  impl_->complete_send_request(req, type.packed_size() * count);
  *request = req;
  return MpiError::kSuccess;
}

MpiError Comm::irecv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                     Request** request) {
  if (request == nullptr) {
    return MpiError::kInvalidArg;
  }
  *request = nullptr;
  if (!valid() || !type.valid() || (buf == nullptr && count > 0)) {
    return MpiError::kInvalidArg;
  }
  if (source != kAnySource && !rank_valid(source)) {
    return MpiError::kInvalidRank;
  }
  Request* req = impl_->make_request(Request::Kind::kRecv, buf, count, type);
  const MpiError err = impl_->post_recv(rank_, source, tag, buf, count, type, req);
  if (err != MpiError::kSuccess) {
    delete req;
    return err;
  }
  *request = req;
  return MpiError::kSuccess;
}

MpiError Comm::wait(Request** request, Status* status) { return impl_->wait(request, status); }

MpiError Comm::test(Request** request, bool* completed, Status* status) {
  return impl_->test(request, completed, status);
}

MpiError Comm::waitany(std::span<Request*> requests, int* index, Status* status) {
  return impl_->waitany(requests, index, status);
}

MpiError Comm::probe(int source, int tag, Status* status) {
  if (!valid() || (source != kAnySource && !rank_valid(source))) {
    return MpiError::kInvalidRank;
  }
  return impl_->probe(rank_, source, tag, /*blocking=*/true, nullptr, status);
}

MpiError Comm::iprobe(int source, int tag, bool* flag, Status* status) {
  if (flag == nullptr) {
    return MpiError::kInvalidArg;
  }
  if (!valid() || (source != kAnySource && !rank_valid(source))) {
    return MpiError::kInvalidRank;
  }
  return impl_->probe(rank_, source, tag, /*blocking=*/false, flag, status);
}

MpiError Comm::waitall(std::span<Request*> requests) {
  MpiError first_error = MpiError::kSuccess;
  for (Request*& req : requests) {
    if (req == nullptr) {
      continue;
    }
    const MpiError err = wait(&req, nullptr);
    if (err != MpiError::kSuccess && first_error == MpiError::kSuccess) {
      first_error = err;
    }
  }
  return first_error;
}

MpiError Comm::sendrecv(const void* sendbuf, std::size_t sendcount, const Datatype& sendtype,
                        int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                        const Datatype& recvtype, int source, int recvtag, Status* status) {
  Request* recv_req = nullptr;
  if (const MpiError err = irecv(recvbuf, recvcount, recvtype, source, recvtag, &recv_req);
      err != MpiError::kSuccess) {
    return err;
  }
  if (const MpiError err = send(sendbuf, sendcount, sendtype, dest, sendtag);
      err != MpiError::kSuccess) {
    (void)wait(&recv_req, nullptr);
    return err;
  }
  return wait(&recv_req, status);
}

// -- Comm: collectives (linear algorithms over internal p2p) -----------------------

MpiError Comm::barrier() {
  // Gather a token at rank 0, then broadcast the release.
  const Datatype type = Datatype::byte();
  std::byte token{};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      if (const MpiError err = recv(&token, 1, type, r, kTagBarrierIn); err != MpiError::kSuccess) {
        return err;
      }
    }
    for (int r = 1; r < size(); ++r) {
      if (const MpiError err = send(&token, 1, type, r, kTagBarrierOut);
          err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  if (const MpiError err = send(&token, 1, type, 0, kTagBarrierIn); err != MpiError::kSuccess) {
    return err;
  }
  return recv(&token, 1, type, 0, kTagBarrierOut);
}

MpiError Comm::bcast(void* buf, std::size_t count, const Datatype& type, int root) {
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        continue;
      }
      if (const MpiError err = send(buf, count, type, r, kTagBcast); err != MpiError::kSuccess) {
        return err;
      }
    }
    return MpiError::kSuccess;
  }
  return recv(buf, count, type, root, kTagBcast);
}

MpiError Comm::reduce(const void* sendbuf, void* recvbuf, std::size_t count, const Datatype& type,
                      ReduceOp op, int root) {
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (rank_ != root) {
    return send(sendbuf, count, type, root, kTagReduce);
  }
  if (recvbuf != sendbuf) {
    std::memcpy(recvbuf, sendbuf, type.extent() * count);
  }
  std::vector<std::byte> scratch(type.extent() * count);
  for (int r = 0; r < size(); ++r) {
    if (r == root) {
      continue;
    }
    if (const MpiError err = recv(scratch.data(), count, type, r, kTagReduce);
        err != MpiError::kSuccess) {
      return err;
    }
    if (!apply_reduce(op, type, count, scratch.data(), recvbuf)) {
      return MpiError::kInvalidArg;
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                         const Datatype& type, ReduceOp op) {
  if (const MpiError err = reduce(sendbuf, recvbuf, count, type, op, 0);
      err != MpiError::kSuccess) {
    return err;
  }
  return bcast(recvbuf, count, type, 0);
}

MpiError Comm::gather(const void* sendbuf, std::size_t count, const Datatype& type,
                      void* recvbuf, int root) {
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (rank_ != root) {
    return send(sendbuf, count, type, root, kTagGather);
  }
  auto* recv_bytes = static_cast<std::byte*>(recvbuf);
  const std::size_t slot = type.extent() * count;
  for (int r = 0; r < size(); ++r) {
    std::byte* dst = recv_bytes + static_cast<std::size_t>(r) * slot;
    if (r == root) {
      std::memcpy(dst, sendbuf, slot);
      continue;
    }
    if (const MpiError err = recv(dst, count, type, r, kTagGather); err != MpiError::kSuccess) {
      return err;
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::scatter(const void* sendbuf, std::size_t count, const Datatype& type,
                       void* recvbuf, int root) {
  if (!rank_valid(root)) {
    return MpiError::kInvalidRank;
  }
  if (rank_ != root) {
    return recv(recvbuf, count, type, root, kTagScatter);
  }
  const auto* send_bytes = static_cast<const std::byte*>(sendbuf);
  const std::size_t slot = type.extent() * count;
  for (int r = 0; r < size(); ++r) {
    const std::byte* src = send_bytes + static_cast<std::size_t>(r) * slot;
    if (r == root) {
      std::memcpy(recvbuf, src, slot);
      continue;
    }
    if (const MpiError err = send(src, count, type, r, kTagScatter); err != MpiError::kSuccess) {
      return err;
    }
  }
  return MpiError::kSuccess;
}

MpiError Comm::allgather(const void* sendbuf, std::size_t count, const Datatype& type,
                         void* recvbuf) {
  if (const MpiError err = gather(sendbuf, count, type, recvbuf, 0);
      err != MpiError::kSuccess) {
    return err;
  }
  // Broadcast the assembled result.
  return bcast(recvbuf, count * static_cast<std::size_t>(size()), type, 0);
}

}  // namespace mpisim
