// Outermost-MPI-call tracking shared by every communicator backend.
//
// Collectives and blocking receives are built from inner send/recv/wait
// calls: the label keeps DeadlockReports (and the proc backend's per-rank
// blocked-site stamps) naming the user-visible operation, and suppresses
// fault-plan probes on the internal calls (one probe per user call).
#pragma once

#include <optional>

#include "obs/ring.hpp"

namespace mpisim {

namespace detail {
/// The outermost public MPI call executing on this thread (null between
/// calls). One slot per thread is enough: ranks never nest worlds.
inline thread_local const char* t_op_label = nullptr;
}  // namespace detail

struct OpScope {
  const char* prev;
  bool outermost;
  /// Outermost calls become spans on the rank's host track; inner calls
  /// (collective building blocks) stay invisible, matching the label rule.
  std::optional<obs::Span> span;
  explicit OpScope(const char* label, int rank = -1)
      : prev(detail::t_op_label), outermost(detail::t_op_label == nullptr) {
    if (outermost) {
      detail::t_op_label = label;
      if (obs::tracing_enabled()) {
        span.emplace(rank, obs::EventKind::kMpi, obs::kHostTrack, label);
      }
    }
  }
  ~OpScope() { detail::t_op_label = prev; }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
};

[[nodiscard]] inline const char* current_op_label(const char* fallback) {
  return detail::t_op_label != nullptr ? detail::t_op_label : fallback;
}

}  // namespace mpisim
