// The proc backend's world-segment layout. One named segment per World::run
// holds, in order: the header (poison word, progress counter, geometry),
// one RankSlot per rank (heartbeat, blocked-op seqlock block, in-flight
// table, rank_kill handshake), the deadlock and failure report areas, and
// the N×N grid of SPSC message rings.
//
// Everything here is shared across processes: only lock-free std::atomic
// and plain PODs — never a pthread mutex — live in the segment, so a rank
// dying at any instruction cannot leave shared state locked (the recovery
// invariant docs/architecture.md spells out).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "mpisim/shm_ring.hpp"

namespace mpisim::shmlayout {

inline constexpr std::uint64_t kMagic = 0x6375'7361'6e77'3031ULL;  // "cusanw01"
inline constexpr int kMaxInflight = 12;
inline constexpr int kMaxSite = 40;
inline constexpr int kMaxErrorMsg = 184;
inline constexpr int kMaxDeadlockEntries = 64;

/// Lifecycle of a rank process, stamped by the rank itself.
enum class RankState : std::uint32_t {
  kStarting = 0,
  kRunning = 1,
  kExited = 2,    ///< rank_main returned; the process is about to _exit(0)
  kAppError = 3,  ///< rank_main threw; error_msg holds what()
};

/// Poison word: why the world was poisoned (header.poison).
enum class Poison : std::uint32_t {
  kNone = 0,
  kDeadlock = 1,
  kRankFailure = 2,
};

struct ShmBlockedOp {
  char op[kMaxSite];
  std::int32_t peer;
  std::int32_t tag;
  std::int32_t comm_id;
  std::uint8_t active;  ///< currently inside a blocking wait
  std::uint8_t soft;    ///< Test-poll streak past the threshold
};

struct ShmInflight {
  std::uint8_t kind;  ///< 0 send, 1 recv
  std::int32_t peer;
  std::int32_t tag;
};

/// Per-rank slot. The seqlock (`ver` odd while writing) covers the
/// descriptive block: site/blocked/in-flight. Heartbeat and state are
/// plain atomics outside it — the heartbeat thread must never contend
/// with the rank thread's seqlock writes.
struct alignas(64) RankSlot {
  std::atomic<std::uint64_t> heartbeat_ns;  ///< common::now_ns stamp
  std::atomic<RankState> state;
  std::atomic<std::uint64_t> result_bytes;  ///< published result-blob size (0 = none)
  std::atomic<std::uint64_t> ver;           ///< seqlock for the block below

  char site[kMaxSite];        ///< last MPI operation entered (user-visible label)
  ShmBlockedOp blocked;
  std::uint32_t inflight_count;  ///< live requests (may exceed the table)
  ShmInflight inflight[kMaxInflight];
  char error_msg[kMaxErrorMsg];  ///< exception text when state == kAppError

  /// rank_kill handshake: the dying rank stamps what fired so the
  /// supervisor can import it into the parent's fired-fault ledger.
  std::atomic<std::uint32_t> kill_fired;  ///< 0 none, 1 record valid
  std::uint32_t kill_action;              ///< faultsim::Action
  std::uint32_t kill_spec_index;          ///< index of the spec in the plan
};

struct ShmDeadlockEntry {
  std::int32_t rank;
  std::int32_t peer;
  std::int32_t tag;
  std::int32_t comm_id;
  std::uint8_t soft;
  char op[kMaxSite];
};

struct ShmDeadlockArea {
  std::uint32_t count;
  ShmDeadlockEntry entries[kMaxDeadlockEntries];
};

/// Failure report area, written in full by the supervisor before the
/// release-store of header.poison = kRankFailure.
struct ShmFailureArea {
  std::int32_t rank;
  std::int32_t kind;       ///< FailureKind
  std::int32_t signal;     ///< terminating signal (0 if none)
  std::int32_t exit_code;  ///< exit status (kind kExitCode)
  std::uint64_t last_heartbeat_ns;
  std::uint64_t detected_ns;
  char site[kMaxSite];
  std::uint32_t inflight_count;
  ShmInflight inflight[kMaxInflight];
};

struct alignas(64) SegHeader {
  std::uint64_t magic;
  std::int32_t world_size;
  std::uint32_t ring_bytes;     ///< per-ring data capacity
  std::uint32_t eager_max;      ///< payloads above this take the rendezvous path
  std::int32_t supervisor_pid;
  std::uint32_t watchdog_ms;    ///< deadlock quiet-time budget (0 = no detection)
  std::uint32_t heartbeat_ms;   ///< rank heartbeat stamping interval
  std::atomic<std::uint64_t> progress;   ///< bumped on every message publish/delivery
  std::atomic<Poison> poison;
  std::atomic<std::int32_t> failed_rank; ///< valid when poison == kRankFailure
};

/// Offsets of each region within the segment, derived from the geometry.
struct Layout {
  int world_size{0};
  std::uint32_t ring_bytes{0};
  std::size_t slots_off{0};
  std::size_t deadlock_off{0};
  std::size_t failure_off{0};
  std::size_t rings_off{0};
  std::size_t total_bytes{0};

  [[nodiscard]] static constexpr std::size_t align64(std::size_t n) {
    return (n + 63) / 64 * 64;
  }

  [[nodiscard]] static Layout compute(int world_size, std::uint32_t ring_bytes) {
    Layout l;
    l.world_size = world_size;
    l.ring_bytes = ring_bytes;
    std::size_t off = align64(sizeof(SegHeader));
    l.slots_off = off;
    off = align64(off + sizeof(RankSlot) * static_cast<std::size_t>(world_size));
    l.deadlock_off = off;
    off = align64(off + sizeof(ShmDeadlockArea));
    l.failure_off = off;
    off = align64(off + sizeof(ShmFailureArea));
    l.rings_off = off;
    off += shmring::ring_footprint(ring_bytes) * static_cast<std::size_t>(world_size) *
           static_cast<std::size_t>(world_size);
    l.total_bytes = off;
    return l;
  }

  [[nodiscard]] SegHeader* header(void* base) const {
    return static_cast<SegHeader*>(base);
  }
  [[nodiscard]] RankSlot* slot(void* base, int rank) const {
    return reinterpret_cast<RankSlot*>(static_cast<std::byte*>(base) + slots_off) + rank;
  }
  [[nodiscard]] ShmDeadlockArea* deadlock(void* base) const {
    return reinterpret_cast<ShmDeadlockArea*>(static_cast<std::byte*>(base) + deadlock_off);
  }
  [[nodiscard]] ShmFailureArea* failure(void* base) const {
    return reinterpret_cast<ShmFailureArea*>(static_cast<std::byte*>(base) + failure_off);
  }
  /// Ring carrying messages src → dst.
  [[nodiscard]] shmring::Ring ring(void* base, int src, int dst) const {
    const std::size_t index = static_cast<std::size_t>(src) *
                                  static_cast<std::size_t>(world_size) +
                              static_cast<std::size_t>(dst);
    std::byte* ring_base = static_cast<std::byte*>(base) + rings_off +
                           index * shmring::ring_footprint(ring_bytes);
    return shmring::ring_at(ring_base);
  }
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic<RankState>::is_always_lock_free);
static_assert(std::atomic<Poison>::is_always_lock_free);

}  // namespace mpisim::shmlayout
