// MPI progress watchdog: converts "every live rank is blocked and nothing
// can make progress" from an eternal hang into a structured DeadlockReport —
// graceful degradation from "CI hangs" to "test fails with a diagnosis".
//
// Detection condition: every rank of the world is either exited or blocked
// in a blocking call (or soft-blocked: spinning on an incomplete Test), at
// least one rank is blocked, and the shared progress counter — bumped on
// every message delivery / completion — has not moved for the watchdog
// timeout. Blocked threads poll this condition themselves (no extra watchdog
// thread); the first to observe it declares the deadlock, snapshots the
// per-rank blocked-op table, and poisons the communicator: every blocked and
// future blocking call returns MpiError::kDeadlock immediately.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mpisim {

/// Watchdog timeout: CUSAN_MPI_WATCHDOG_MS, default 1000 ms. 0 disables
/// declaration (blocking calls then wait forever, the pre-watchdog
/// behaviour).
[[nodiscard]] std::chrono::milliseconds default_watchdog_timeout();

/// One rank's blocked operation at declaration time.
struct BlockedOp {
  int rank{-1};
  std::string op;    ///< outermost MPI call, e.g. "MPI_Barrier"
  int peer{-1};      ///< source/dest rank (kAnySource / -1 if n/a)
  int tag{-1};       ///< message tag (-1 if n/a; internal tags are negative)
  int comm_id{0};    ///< 0 = world communicator, >0 = dup children
  bool soft{false};  ///< soft-blocked (Test polling loop), not a blocking call
};

struct DeadlockReport {
  std::vector<BlockedOp> blocked;  ///< sorted by rank
  int world_size{0};

  [[nodiscard]] bool empty() const { return blocked.empty(); }
  [[nodiscard]] const BlockedOp* for_rank(int rank) const;
  /// Multi-line human-readable rendering (one line per blocked rank).
  [[nodiscard]] std::string to_string() const;
};

class ProgressTracker {
 public:
  explicit ProgressTracker(int world_size);

  [[nodiscard]] int world_size() const { return world_size_; }

  void set_timeout(std::chrono::milliseconds timeout);
  [[nodiscard]] std::chrono::milliseconds timeout() const;

  /// Bumped on every state change that can unblock a rank (delivery,
  /// unexpected-message arrival, request completion, rank exit).
  void note_progress() { progress_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  void block(const BlockedOp& op);
  void unblock(int rank);
  /// A rank spinning on Test without completion counts as blocked for the
  /// all-blocked condition (it cannot make progress by itself).
  void soft_block(const BlockedOp& op);
  void soft_unblock(int rank);
  void rank_exited(int rank);

  /// Declare a deadlock if the condition holds and the progress counter
  /// still equals `progress_snapshot`. Idempotent; returns deadlocked().
  bool try_declare(std::uint64_t progress_snapshot);

  [[nodiscard]] bool deadlocked() const {
    return deadlocked_.load(std::memory_order_acquire);
  }
  [[nodiscard]] DeadlockReport report() const;

 private:
  int world_size_;
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::int64_t> timeout_us_;
  std::atomic<bool> deadlocked_{false};

  mutable std::mutex mutex_;
  std::unordered_map<int, BlockedOp> blocked_;       ///< rank -> hard-blocked op
  std::unordered_map<int, BlockedOp> soft_blocked_;  ///< rank -> Test-poll op
  std::size_t exited_{0};
  std::vector<bool> exited_ranks_;
  DeadlockReport report_;
};

}  // namespace mpisim
