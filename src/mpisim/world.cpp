#include "mpisim/world.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace mpisim {

World::World(int size)
    : size_(size),
      tracker_(std::make_shared<ProgressTracker>(size)),
      impl_(make_comm_impl(size, tracker_)) {
  CUSAN_ASSERT_MSG(size > 0, "world size must be positive");
}

void World::run(const std::function<void(Comm)>& rank_main) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> failures(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &failures] {
      try {
        rank_main(Comm(impl_, r));
      } catch (...) {
        failures[static_cast<std::size_t>(r)] = std::current_exception();
      }
      // Exited ranks stop counting toward the all-blocked condition.
      tracker_->rank_exited(r);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& failure : failures) {
    if (failure) {
      std::rethrow_exception(failure);
    }
  }
}

}  // namespace mpisim
