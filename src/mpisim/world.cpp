#include "mpisim/world.hpp"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_context.hpp"
#include "mpisim/proc_comm.hpp"
#include "mpisim/supervisor.hpp"

namespace mpisim {

namespace {

std::optional<Backend> g_backend_override;

// publish_result in thread mode: ranks are threads of this process, so the
// blob goes straight into the owning World. The owner is tracked per rank
// thread (set by run_threads before rank_main starts), not by one process
// pointer — the svc executor runs many thread-backend worlds concurrently.
constinit thread_local World* t_running_thread_world = nullptr;

}  // namespace

Backend default_backend() {
  if (g_backend_override.has_value()) {
    return *g_backend_override;
  }
  const char* env = std::getenv("CUSAN_MPI_BACKEND");
  if (env != nullptr && std::strcmp(env, "proc") == 0) {
    return Backend::kProc;
  }
  return Backend::kThread;
}

ScopedBackend::ScopedBackend(Backend backend) : prev_(g_backend_override) {
  g_backend_override = backend;
}

ScopedBackend::~ScopedBackend() { g_backend_override = prev_; }

void publish_result(const Comm& comm, std::span<const std::byte> bytes) {
  if (ProcTransport* t = proc::current_transport()) {
    proc::publish_result(*t, bytes);
    return;
  }
  World* world = t_running_thread_world;
  CUSAN_ASSERT_MSG(world != nullptr, "publish_result outside World::run");
  // Each rank writes only its own pre-sized slot: no lock needed.
  world->thread_results_[static_cast<std::size_t>(comm.rank())].assign(bytes.begin(),
                                                                       bytes.end());
}

World::World(int size) : World(size, default_backend()) {}

World::World(int size, Backend backend)
    : size_(size),
      backend_(backend),
      heartbeat_(proc::default_heartbeat_interval()),
      tracker_(std::make_shared<ProgressTracker>(size)) {
  CUSAN_ASSERT_MSG(size > 0, "world size must be positive");
  if (backend_ == Backend::kThread) {
    impl_ = make_comm_impl(size, tracker_);
  }
  // Proc backend: no in-process comm state; everything lives in the world
  // segment the Supervisor creates per run().
  thread_results_.resize(static_cast<std::size_t>(size));
}

World::~World() = default;

void World::run(const std::function<void(Comm)>& rank_main) {
  if (backend_ == Backend::kProc) {
    run_procs(rank_main);
  } else {
    run_threads(rank_main);
  }
}

void World::run_threads(const std::function<void(Comm)>& rank_main) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> failures(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  // Rank threads inherit the spawning thread's session context (metrics
  // registry, diagnostics hub, injector, controller bindings), so sessions
  // stay isolated when many worlds run concurrently under the svc executor.
  const common::ThreadContext context = common::ThreadContext::capture();
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &rank_main, &failures, &context] {
      const common::ThreadContext::Scope scope(context);
      t_running_thread_world = this;
      try {
        rank_main(Comm(impl_, r));
      } catch (...) {
        failures[static_cast<std::size_t>(r)] = std::current_exception();
      }
      t_running_thread_world = nullptr;
      // Exited ranks stop counting toward the all-blocked condition.
      tracker_->rank_exited(r);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& failure : failures) {
    if (failure) {
      std::rethrow_exception(failure);
    }
  }
}

void World::run_procs(const std::function<void(Comm)>& rank_main) {
  Supervisor::Options options;
  options.world_size = size_;
  options.watchdog = tracker_->timeout();
  options.heartbeat = heartbeat_;
  supervisor_ = std::make_unique<Supervisor>(options);
  supervisor_->run(rank_main);
  failure_ = supervisor_->failure_report();
  if (!supervisor_->first_app_error().empty()) {
    // Mirror the thread backend: a throwing rank_main surfaces here. The
    // original exception type died with the child; the message survives.
    throw std::runtime_error(supervisor_->first_app_error());
  }
}

DeadlockReport World::deadlock_report() const {
  if (backend_ == Backend::kProc) {
    return supervisor_ ? supervisor_->deadlock_report() : DeadlockReport{};
  }
  return tracker_->report();
}

const std::vector<std::byte>& World::rank_result(int rank) const {
  CUSAN_ASSERT_MSG(rank >= 0 && rank < size_, "rank out of range");
  if (backend_ == Backend::kProc && supervisor_) {
    return supervisor_->rank_result(rank);
  }
  return thread_results_[static_cast<std::size_t>(rank)];
}

}  // namespace mpisim
