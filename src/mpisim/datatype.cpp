#include "mpisim/datatype.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace mpisim {

Datatype Datatype::make_builtin(const char* name, Scalar scalar) {
  auto impl = std::make_shared<Impl>();
  impl->name = name;
  impl->extent = scalar_size(scalar);
  impl->packed = impl->extent;
  impl->layout = {LayoutEntry{0, scalar}};
  return Datatype(std::move(impl));
}

Datatype Datatype::byte() {
  static const Datatype t = make_builtin("MPI_BYTE", Scalar::kByte);
  return t;
}
Datatype Datatype::char_() {
  static const Datatype t = make_builtin("MPI_CHAR", Scalar::kChar);
  return t;
}
Datatype Datatype::int32() {
  static const Datatype t = make_builtin("MPI_INT", Scalar::kInt32);
  return t;
}
Datatype Datatype::uint32() {
  static const Datatype t = make_builtin("MPI_UNSIGNED", Scalar::kUInt32);
  return t;
}
Datatype Datatype::int64() {
  static const Datatype t = make_builtin("MPI_LONG_LONG", Scalar::kInt64);
  return t;
}
Datatype Datatype::uint64() {
  static const Datatype t = make_builtin("MPI_UNSIGNED_LONG_LONG", Scalar::kUInt64);
  return t;
}
Datatype Datatype::float32() {
  static const Datatype t = make_builtin("MPI_FLOAT", Scalar::kFloat);
  return t;
}
Datatype Datatype::float64() {
  static const Datatype t = make_builtin("MPI_DOUBLE", Scalar::kDouble);
  return t;
}

Datatype Datatype::contiguous(const Datatype& base, std::size_t count) {
  CUSAN_ASSERT(base.valid());
  CUSAN_ASSERT(count > 0);
  auto impl = std::make_shared<Impl>();
  impl->name = common::format("contiguous({}, {})", count, base.name());
  impl->extent = base.extent() * count;
  impl->packed = base.packed_size() * count;
  impl->layout.reserve(base.layout().size() * count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t shift = i * base.extent();
    for (const auto& entry : base.layout()) {
      impl->layout.push_back(LayoutEntry{entry.offset + shift, entry.scalar});
    }
  }
  return Datatype(std::move(impl));
}

Datatype Datatype::vector(const Datatype& base, std::size_t count, std::size_t blocklength,
                          std::size_t stride) {
  CUSAN_ASSERT(base.valid());
  CUSAN_ASSERT(count > 0 && blocklength > 0 && stride >= blocklength);
  auto impl = std::make_shared<Impl>();
  impl->name = common::format("vector({}x{} stride {}, {})", count, blocklength, stride,
                              base.name());
  // MPI extent of a vector: distance from first to one past the last block.
  impl->extent = ((count - 1) * stride + blocklength) * base.extent();
  impl->packed = count * blocklength * base.packed_size();
  impl->layout.reserve(base.layout().size() * count * blocklength);
  for (std::size_t block = 0; block < count; ++block) {
    for (std::size_t i = 0; i < blocklength; ++i) {
      const std::size_t shift = (block * stride + i) * base.extent();
      for (const auto& entry : base.layout()) {
        impl->layout.push_back(LayoutEntry{entry.offset + shift, entry.scalar});
      }
    }
  }
  return Datatype(std::move(impl));
}

Datatype Datatype::indexed(const Datatype& base, std::span<const std::size_t> blocklengths,
                           std::span<const std::size_t> displacements) {
  CUSAN_ASSERT(base.valid());
  CUSAN_ASSERT(!blocklengths.empty() && blocklengths.size() == displacements.size());
  auto impl = std::make_shared<Impl>();
  impl->name = common::format("indexed({} blocks, {})", blocklengths.size(), base.name());
  std::size_t end = 0;
  std::size_t packed_elems = 0;
  for (std::size_t block = 0; block < blocklengths.size(); ++block) {
    CUSAN_ASSERT_MSG(blocklengths[block] > 0, "empty indexed block");
    CUSAN_ASSERT_MSG(displacements[block] >= end, "indexed blocks must be increasing/disjoint");
    end = displacements[block] + blocklengths[block];
    packed_elems += blocklengths[block];
    for (std::size_t i = 0; i < blocklengths[block]; ++i) {
      const std::size_t shift = (displacements[block] + i) * base.extent();
      for (const auto& entry : base.layout()) {
        impl->layout.push_back(LayoutEntry{entry.offset + shift, entry.scalar});
      }
    }
  }
  impl->extent = end * base.extent();
  impl->packed = packed_elems * base.packed_size();
  return Datatype(std::move(impl));
}

const std::string& Datatype::name() const {
  CUSAN_ASSERT(valid());
  return impl_->name;
}

std::size_t Datatype::extent() const {
  CUSAN_ASSERT(valid());
  return impl_->extent;
}

std::size_t Datatype::packed_size() const {
  CUSAN_ASSERT(valid());
  return impl_->packed;
}

bool Datatype::is_contiguous() const {
  CUSAN_ASSERT(valid());
  if (impl_->packed != impl_->extent) {
    return false;
  }
  std::size_t expected = 0;
  for (const auto& entry : impl_->layout) {
    if (entry.offset != expected) {
      return false;
    }
    expected += scalar_size(entry.scalar);
  }
  return expected == impl_->extent;
}

const std::vector<LayoutEntry>& Datatype::layout() const {
  CUSAN_ASSERT(valid());
  return impl_->layout;
}

void Datatype::signature(std::size_t count, std::vector<Scalar>& out) const {
  CUSAN_ASSERT(valid());
  out.reserve(out.size() + impl_->layout.size() * count);
  for (std::size_t i = 0; i < count; ++i) {
    for (const auto& entry : impl_->layout) {
      out.push_back(entry.scalar);
    }
  }
}

void Datatype::pack(const void* src, std::size_t count, void* dst) const {
  CUSAN_ASSERT(valid());
  if (is_contiguous()) {
    std::memcpy(dst, src, impl_->extent * count);
    return;
  }
  const auto* in = static_cast<const std::byte*>(src);
  auto* out = static_cast<std::byte*>(dst);
  for (std::size_t i = 0; i < count; ++i) {
    const std::byte* elem = in + i * impl_->extent;
    for (const auto& entry : impl_->layout) {
      const std::size_t n = scalar_size(entry.scalar);
      std::memcpy(out, elem + entry.offset, n);
      out += n;
    }
  }
}

void Datatype::unpack(const void* src, std::size_t count, void* dst) const {
  CUSAN_ASSERT(valid());
  if (is_contiguous()) {
    std::memcpy(dst, src, impl_->extent * count);
    return;
  }
  const auto* in = static_cast<const std::byte*>(src);
  auto* out = static_cast<std::byte*>(dst);
  for (std::size_t i = 0; i < count; ++i) {
    std::byte* elem = out + i * impl_->extent;
    for (const auto& entry : impl_->layout) {
      const std::size_t n = scalar_size(entry.scalar);
      std::memcpy(elem + entry.offset, in, n);
      in += n;
    }
  }
}

namespace {

template <typename T>
void reduce_typed(ReduceOp op, std::size_t count, const void* in_raw, void* inout_raw) {
  const T* in = static_cast<const T*>(in_raw);
  T* inout = static_cast<T*>(inout_raw);
  for (std::size_t i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum:
        inout[i] = static_cast<T>(inout[i] + in[i]);
        break;
      case ReduceOp::kMin:
        inout[i] = in[i] < inout[i] ? in[i] : inout[i];
        break;
      case ReduceOp::kMax:
        inout[i] = in[i] > inout[i] ? in[i] : inout[i];
        break;
      case ReduceOp::kProd:
        inout[i] = static_cast<T>(inout[i] * in[i]);
        break;
    }
  }
}

}  // namespace

bool apply_reduce(ReduceOp op, const Datatype& type, std::size_t count, const void* in,
                  void* inout) {
  if (!type.valid() || type.layout().size() != 1 || type.layout().front().offset != 0) {
    return false;  // reductions only on builtin scalars
  }
  switch (type.layout().front().scalar) {
    case Scalar::kInt32:
      reduce_typed<std::int32_t>(op, count, in, inout);
      return true;
    case Scalar::kUInt32:
      reduce_typed<std::uint32_t>(op, count, in, inout);
      return true;
    case Scalar::kInt64:
      reduce_typed<std::int64_t>(op, count, in, inout);
      return true;
    case Scalar::kUInt64:
      reduce_typed<std::uint64_t>(op, count, in, inout);
      return true;
    case Scalar::kFloat:
      reduce_typed<float>(op, count, in, inout);
      return true;
    case Scalar::kDouble:
      reduce_typed<double>(op, count, in, inout);
      return true;
    case Scalar::kByte:
    case Scalar::kChar:
      return false;
  }
  return false;
}

}  // namespace mpisim
