#include "mpisim/proc_comm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "faultsim/injector.hpp"
#include "mpisim/counters.hpp"
#include "mpisim/deadlock.hpp"
#include "mpisim/failure.hpp"
#include "mpisim/op_scope.hpp"
#include "mpisim/request.hpp"
#include "mpisim/shm.hpp"
#include "obs/metrics.hpp"
#include "schedsim/controller.hpp"

namespace mpisim {

namespace {

/// Yield rounds before a blocked wait falls back to sleeping polls.
constexpr int kSpinRounds = 64;
/// Consecutive incomplete Test calls before the rank counts as soft-blocked
/// (same threshold as the thread backend).
constexpr int kSoftBlockThreshold = 64;

/// Poll-loop backoff: yield first, then sleep in growing steps. There is no
/// cross-process futex to park on by design (nothing a dying peer could
/// leave locked), so blocked ranks poll; the steps keep the idle cost low.
void poll_backoff(int& round) {
  if (round < kSpinRounds) {
    std::this_thread::yield();
  } else if (round < 512) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ++round;
}

[[nodiscard]] bool tag_accepts(int want_tag, int tag) {
  return want_tag == kAnyTag || want_tag == tag;
}

[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text) {
    return fallback;
  }
  return static_cast<std::uint64_t>(value);
}

// Cached per thread and re-resolved when the current registry changes
// (session scoping), like detail::contention_counters().
struct ProcCounters {
  obs::MetricsRegistry* owner{nullptr};
  obs::Counter* eager_msgs{nullptr};
  obs::Counter* rendezvous_msgs{nullptr};
  obs::Counter* ring_full_backoffs{nullptr};
  obs::Counter* sends_dropped_dead{nullptr};
};

[[nodiscard]] ProcCounters& proc_counters() {
  thread_local ProcCounters counters;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  if (counters.owner != &registry) {
    counters.owner = &registry;
    counters.eager_msgs = &registry.counter("mpisim.proc.eager_msgs");
    counters.rendezvous_msgs = &registry.counter("mpisim.proc.rendezvous_msgs");
    counters.ring_full_backoffs = &registry.counter("mpisim.proc.ring_full_backoffs");
    counters.sends_dropped_dead = &registry.counter("mpisim.proc.sends_dropped_dead");
  }
  return counters;
}

ProcTransport* g_current_transport = nullptr;

void copy_label(char (&dst)[shmlayout::kMaxSite], const char* src) {
  std::strncpy(dst, src == nullptr ? "" : src, sizeof(dst) - 1);
  dst[sizeof(dst) - 1] = '\0';
}

}  // namespace

// The child-side engine. Single app thread per process (plus the heartbeat
// stamper, which only touches its own slot's plain atomics), so the local
// mailboxes need no locks — all cross-process synchronization is the rings'
// head/tail pairs and the poison word.
class ProcTransport {
 public:
  ProcTransport(void* base, shmlayout::Layout layout, int rank, std::string seg_prefix)
      : base_(base),
        layout_(layout),
        rank_(rank),
        seg_prefix_(std::move(seg_prefix)),
        header_(layout.header(base)),
        slot_(layout.slot(base, rank)) {
    CUSAN_ASSERT(header_->magic == shmlayout::kMagic);
    slot_->heartbeat_ns.store(common::now_ns(), std::memory_order_relaxed);
  }

  ~ProcTransport() { stop_heartbeat(); }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int world() const { return layout_.world_size; }

  void start() {
    slot_->heartbeat_ns.store(common::now_ns(), std::memory_order_relaxed);
    slot_->state.store(shmlayout::RankState::kRunning, std::memory_order_release);
    heartbeat_stop_.store(false, std::memory_order_relaxed);
    const auto interval = std::chrono::milliseconds(
        std::clamp<std::uint64_t>(header_->heartbeat_ms, 5, 10'000) / 2 + 1);
    heartbeat_ = std::thread([this, interval] {
      while (!heartbeat_stop_.load(std::memory_order_relaxed)) {
        slot_->heartbeat_ns.store(common::now_ns(), std::memory_order_relaxed);
        std::this_thread::sleep_for(interval);
      }
    });
  }

  void finalize_clean() {
    stop_heartbeat();
    slot_->state.store(shmlayout::RankState::kExited, std::memory_order_release);
    note_progress();  // peers' quiet timers must see the exit as an event
  }

  void finalize_error(const char* what) {
    stop_heartbeat();
    slot_write([&] { copy_label_n(slot_->error_msg, what); });
    slot_->state.store(shmlayout::RankState::kAppError, std::memory_order_release);
    note_progress();
  }

  /// Publish this rank's result blob as `<prefix>.res.<rank>`; the
  /// supervisor collects it when the process has been reaped.
  void publish_result(std::span<const std::byte> bytes) {
    if (bytes.empty()) {
      return;
    }
    const std::string name = seg_prefix_ + ".res." + std::to_string(rank_);
    std::string error;
    shm::Segment seg = shm::Segment::create(name, bytes.size(), &error);
    if (!seg.valid()) {
      return;  // supervisor falls back to "no result from this rank"
    }
    std::memcpy(seg.data(), bytes.data(), bytes.size());
    slot_->result_bytes.store(bytes.size(), std::memory_order_release);
  }

  // -- p2p engine -----------------------------------------------------------

  MpiError post_send(int comm_id, int dest, int tag, const void* buf, std::size_t count,
                     const Datatype& type) {
    stamp_site(current_op_label("MPI_Send"));
    maybe_kill();
    clear_soft();
    const std::size_t payload_bytes = type.packed_size() * count;
    sig_scratch_.clear();
    type.signature(count, sig_scratch_);

    if (dest == rank_) {
      // Self-send: no ring round-trip; pack and route through the local
      // mailbox exactly as a drained record would be.
      send_scratch_.resize(payload_bytes);
      type.pack(buf, count, send_scratch_.data());
      route_payload(comm_id, rank_, tag, send_scratch_,
                    std::span<const Scalar>(sig_scratch_));
      note_progress();
      return MpiError::kSuccess;
    }

    shmring::RecordHdr hdr{};
    hdr.tag = tag;
    hdr.comm_id = comm_id;
    hdr.payload_bytes = payload_bytes;
    const auto sig_bytes = std::as_bytes(std::span<const Scalar>(sig_scratch_));

    if (shmring::record_size(sig_scratch_.size(), payload_bytes) <= header_->eager_max) {
      // Eager: pack into scratch, publish inline. The receiver unpacks
      // straight out of the mapped ring (its map-once path).
      hdr.kind = shmring::RecordKind::kMessage;
      send_scratch_.resize(payload_bytes);
      type.pack(buf, count, send_scratch_.data());
      detail::bump(*proc_counters().eager_msgs);
      return publish_blocking(dest, tag, hdr, sig_bytes, send_scratch_);
    }

    // Rendezvous: pack once directly into a fresh named segment (payload
    // then signature); the ring carries only the segment name. The receiver
    // maps it, unpacks once into the user buffer, and unlinks it.
    hdr.kind = shmring::RecordKind::kRendezvous;
    const std::string rv_name =
        seg_prefix_ + ".rv." + std::to_string(rank_) + "." + std::to_string(rendezvous_seq_++);
    std::string error;
    shm::Segment seg =
        shm::Segment::create(rv_name, payload_bytes + sig_scratch_.size(), &error);
    if (!seg.valid()) {
      return MpiError::kOther;  // shm exhausted: surface, don't crash
    }
    type.pack(buf, count, seg.data());
    if (!sig_scratch_.empty()) {
      std::memcpy(static_cast<std::byte*>(seg.data()) + payload_bytes, sig_scratch_.data(),
                  sig_scratch_.size());
    }
    std::vector<std::byte> name_body(rv_name.size() + 1);
    std::memcpy(name_body.data(), rv_name.c_str(), rv_name.size() + 1);
    detail::bump(*proc_counters().rendezvous_msgs);
    const MpiError err = publish_blocking(dest, tag, hdr, {}, name_body);
    if (err != MpiError::kSuccess) {
      seg.unlink();  // never published; reclaim the name now
    }
    return err;
  }

  MpiError post_recv(int comm_id, int source, int tag, void* buf, std::size_t count,
                     const Datatype& type, Request* request) {
    stamp_site(current_op_label("MPI_Recv"));
    maybe_kill();
    clear_soft();
    drain_rings();

    PostedRecv posted;
    posted.source = source;
    posted.tag = tag;
    posted.buffer = buf;
    posted.count = count;
    posted.type = type;
    posted.request = request;

    Box& box = box_for(comm_id);
    std::deque<PMessage>* match_queue = nullptr;
    std::deque<PMessage>::iterator match;
    if (source != kAnySource) {
      std::deque<PMessage>& q = box.by_src[static_cast<std::size_t>(source)].unexpected;
      const auto it = std::find_if(
          q.begin(), q.end(), [&](const PMessage& m) { return tag_accepts(tag, m.tag); });
      if (it != q.end()) {
        match_queue = &q;
        match = it;
      }
    } else {
      // ANY_SOURCE: the oldest head tag-acceptor across all source channels,
      // or a schedule-controller pick among them (same site and actor id as
      // the thread backend, so recorded schedules stay comparable).
      detail::bump(*detail::contention_counters().any_source_scans);
      if (schedsim::Controller::armed()) {
        struct Candidate {
          std::deque<PMessage>* queue;
          std::deque<PMessage>::iterator it;
        };
        std::vector<Candidate> candidates;
        for (auto& src_q : box.by_src) {
          const auto it =
              std::find_if(src_q.unexpected.begin(), src_q.unexpected.end(),
                           [&](const PMessage& m) { return tag_accepts(tag, m.tag); });
          if (it != src_q.unexpected.end()) {
            candidates.push_back({&src_q.unexpected, it});
          }
        }
        if (!candidates.empty()) {
          std::sort(candidates.begin(), candidates.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.it->epoch < b.it->epoch;
                    });
          const int pick = schedsim::Controller::instance().choose(
              schedsim::Site::kMatchRecv, {rank_, 'h', 0},
              static_cast<int>(candidates.size()), 0);
          match_queue = candidates[static_cast<std::size_t>(pick)].queue;
          match = candidates[static_cast<std::size_t>(pick)].it;
        }
      } else {
        for (auto& src_q : box.by_src) {
          const auto it =
              std::find_if(src_q.unexpected.begin(), src_q.unexpected.end(),
                           [&](const PMessage& m) { return tag_accepts(tag, m.tag); });
          if (it != src_q.unexpected.end() &&
              (match_queue == nullptr || it->epoch < match->epoch)) {
            match_queue = &src_q.unexpected;
            match = it;
          }
        }
      }
    }
    if (match_queue != nullptr) {
      const PMessage msg = std::move(*match);
      match_queue->erase(match);
      deliver(msg.src, msg.tag, msg.payload, msg.signature, posted);
      return MpiError::kSuccess;
    }
    posted.epoch = box.next_epoch++;
    if (source != kAnySource) {
      box.by_src[static_cast<std::size_t>(source)].posted.push_back(posted);
    } else {
      box.wildcard.push_back(posted);
    }
    pending_recvs_.push_back({request, source, tag});
    stamp_inflight();
    return MpiError::kSuccess;
  }

  MpiError wait(int comm_id, Request** request, Status* status) {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    const MpiError blocked =
        blocked_wait(current_op_label("MPI_Wait"), req->peer_, req->tag_, comm_id,
                     [req] { return req->complete(); });
    if (blocked != MpiError::kSuccess) {
      // Poisoned: the request stays pending (it can never complete); MUST's
      // finalize-time leak check will see and report it.
      if (status != nullptr) {
        *status = Status{};
        status->error = blocked;
      }
      return blocked;
    }
    const Status st = req->status_;
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  MpiError test(int comm_id, Request** request, bool* completed, Status* status) {
    if (request == nullptr || *request == nullptr) {
      return MpiError::kRequestNull;
    }
    Request* req = *request;
    if (!req->complete()) {
      drain_rings();
    }
    if (!req->complete()) {
      if (completed != nullptr) {
        *completed = false;
      }
      if (const MpiError poison = poison_error(); poison != MpiError::kSuccess) {
        return poison;
      }
      // Soft-block accounting: a rank spinning on incomplete Tests is not
      // making progress; past the streak threshold it counts as blocked so
      // the supervisor's all-blocked check can see a Test-polling deadlock.
      if (++test_polls_ >= kSoftBlockThreshold && !soft_blocked_) {
        soft_blocked_ = true;
        stamp_blocked(current_op_label("MPI_Test"), req->peer_, req->tag_, comm_id,
                      /*active=*/false, /*soft=*/true);
      }
      return MpiError::kSuccess;
    }
    clear_soft();
    const Status st = req->status_;
    if (completed != nullptr) {
      *completed = true;
    }
    if (status != nullptr) {
      *status = st;
    }
    delete req;
    *request = nullptr;
    return st.error;
  }

  MpiError waitany(int comm_id, std::span<Request*> requests, int* index, Status* status) {
    if (index == nullptr) {
      return MpiError::kInvalidArg;
    }
    *index = -1;
    const Request* first_pending = nullptr;
    for (const Request* req : requests) {
      if (req != nullptr) {
        first_pending = req;
        break;
      }
    }
    if (first_pending == nullptr) {
      return MpiError::kRequestNull;
    }
    const MpiError blocked = blocked_wait(
        current_op_label("MPI_Waitany"), first_pending->peer_, first_pending->tag_,
        comm_id, [&] {
          for (std::size_t i = 0; i < requests.size(); ++i) {
            if (requests[i] != nullptr && requests[i]->complete()) {
              *index = static_cast<int>(i);
              return true;
            }
          }
          return false;
        });
    if (blocked != MpiError::kSuccess) {
      if (status != nullptr) {
        *status = Status{};
        status->error = blocked;
      }
      return blocked;
    }
    if (schedsim::Controller::armed()) {
      std::vector<int> complete;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i] != nullptr && requests[i]->complete()) {
          complete.push_back(static_cast<int>(i));
        }
      }
      if (complete.size() > 1) {
        const int pick = schedsim::Controller::instance().choose(
            schedsim::Site::kWaitany, {rank_, 'h', 0}, static_cast<int>(complete.size()), 0);
        *index = complete[static_cast<std::size_t>(pick)];
      }
    }
    return wait(comm_id, &requests[static_cast<std::size_t>(*index)], status);
  }

  MpiError probe(int comm_id, int source, int tag, bool blocking, bool* flag, Status* status) {
    drain_rings();
    Box& box = box_for(comm_id);
    const auto find_match = [&]() -> std::optional<Status> {
      const PMessage* found = nullptr;
      if (source != kAnySource) {
        const std::deque<PMessage>& q =
            box.by_src[static_cast<std::size_t>(source)].unexpected;
        const auto it = std::find_if(
            q.begin(), q.end(), [&](const PMessage& m) { return tag_accepts(tag, m.tag); });
        if (it != q.end()) {
          found = &*it;
        }
      } else {
        detail::bump(*detail::contention_counters().any_source_scans);
        for (const auto& src_q : box.by_src) {
          const auto it =
              std::find_if(src_q.unexpected.begin(), src_q.unexpected.end(),
                           [&](const PMessage& m) { return tag_accepts(tag, m.tag); });
          if (it != src_q.unexpected.end() && (found == nullptr || it->epoch < found->epoch)) {
            found = &*it;
          }
        }
      }
      if (found == nullptr) {
        return std::nullopt;
      }
      return Status{found->src, found->tag, found->payload.size(), MpiError::kSuccess};
    };
    std::optional<Status> envelope = find_match();
    if (!blocking) {
      if (flag != nullptr) {
        *flag = envelope.has_value();
      }
    } else if (!envelope.has_value()) {
      const MpiError blocked =
          blocked_wait(current_op_label("MPI_Probe"), source, tag, comm_id, [&] {
            envelope = find_match();
            return envelope.has_value();
          });
      if (blocked != MpiError::kSuccess) {
        if (status != nullptr) {
          *status = Status{};
          status->error = blocked;
        }
        return blocked;
      }
    }
    if (envelope.has_value() && status != nullptr) {
      *status = *envelope;
    }
    return MpiError::kSuccess;
  }

  void complete_send_request(Request* req, std::size_t bytes) {
    req->status_ = Status{-1, -1, bytes, MpiError::kSuccess};
    req->complete_.store(true, std::memory_order_release);
    note_progress();
  }

  MpiError stall(int comm_id, const char* op_name, int peer, int tag, std::uint64_t fault_id) {
    auto& injector = faultsim::Injector::instance();
    if (header_->watchdog_ms > 0) {
      std::string label = std::string(op_name) + " [stalled by fault plan]";
      const MpiError err =
          blocked_wait(label.c_str(), peer, tag, comm_id, [] { return false; });
      injector.mark_surfaced(fault_id, faultsim::Channel::kDeadlockReport);
      return err;
    }
    injector.mark_surfaced(fault_id, faultsim::Channel::kApiError);
    return MpiError::kOther;
  }

  [[nodiscard]] bool deadlocked() const {
    return header_->poison.load(std::memory_order_acquire) == shmlayout::Poison::kDeadlock;
  }

  [[nodiscard]] DeadlockReport deadlock_report() const {
    DeadlockReport report;
    report.world_size = world();
    if (!deadlocked()) {
      return report;
    }
    // The supervisor wrote the area in full before the poison release-store,
    // so a plain read after the acquire above is safe.
    const shmlayout::ShmDeadlockArea* area = layout_.deadlock(base_);
    const std::uint32_t count =
        std::min<std::uint32_t>(area->count, shmlayout::kMaxDeadlockEntries);
    for (std::uint32_t i = 0; i < count; ++i) {
      const shmlayout::ShmDeadlockEntry& entry = area->entries[i];
      BlockedOp op;
      op.rank = entry.rank;
      op.op.assign(entry.op, strnlen(entry.op, sizeof(entry.op)));
      op.peer = entry.peer;
      op.tag = entry.tag;
      op.comm_id = entry.comm_id;
      op.soft = entry.soft != 0;
      report.blocked.push_back(std::move(op));
    }
    return report;
  }

  [[nodiscard]] std::string failure_summary() const {
    if (header_->poison.load(std::memory_order_acquire) != shmlayout::Poison::kRankFailure) {
      return {};
    }
    // Written in full before the poison release-store (see declare_failure).
    const shmlayout::ShmFailureArea* area = layout_.failure(base_);
    RankFailureReport report;
    report.rank = area->rank;
    report.kind = static_cast<FailureKind>(area->kind);
    report.signal = area->signal;
    report.exit_code = area->exit_code;
    report.last_heartbeat_ns = area->last_heartbeat_ns;
    report.detected_ns = area->detected_ns;
    report.site.assign(area->site, strnlen(area->site, sizeof(area->site)));
    report.inflight_total = area->inflight_count;
    const std::uint32_t table =
        std::min<std::uint32_t>(area->inflight_count, shmlayout::kMaxInflight);
    for (std::uint32_t i = 0; i < table; ++i) {
      report.inflight.push_back(InflightOp{area->inflight[i].kind == 0,
                                           area->inflight[i].peer, area->inflight[i].tag});
    }
    return report.to_string();
  }

 private:
  struct PMessage {
    int src{};
    int tag{};
    std::uint64_t epoch{};
    std::vector<std::byte> payload;
    std::vector<Scalar> signature;
  };

  struct PostedRecv {
    int source{};
    int tag{};
    std::uint64_t epoch{};
    void* buffer{};
    std::size_t count{};
    Datatype type;
    Request* request{};
  };

  struct SrcQueues {
    std::deque<PMessage> unexpected;
    std::deque<PostedRecv> posted;
  };

  /// Local mailbox of one communicator, keyed by comm_id. Created lazily so
  /// a message for a communicator this rank hasn't dup'd yet still has a
  /// place to queue (dup timing differs across ranks).
  struct Box {
    explicit Box(int size) : by_src(static_cast<std::size_t>(size)) {}
    std::uint64_t next_epoch{0};
    std::vector<SrcQueues> by_src;
    std::deque<PostedRecv> wildcard;
  };

  struct PendingRecv {
    Request* request;
    int peer;
    int tag;
  };

  [[nodiscard]] Box& box_for(int comm_id) {
    auto it = boxes_.find(comm_id);
    if (it == boxes_.end()) {
      it = boxes_.emplace(comm_id, Box(world())).first;
    }
    return it->second;
  }

  void note_progress() { header_->progress.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] MpiError poison_error() const {
    switch (header_->poison.load(std::memory_order_acquire)) {
      case shmlayout::Poison::kNone:
        return MpiError::kSuccess;
      case shmlayout::Poison::kDeadlock:
        return MpiError::kDeadlock;
      case shmlayout::Poison::kRankFailure:
        return MpiError::kRankFailed;
    }
    return MpiError::kSuccess;
  }

  // -- slot stamping (seqlock) ---------------------------------------------

  template <typename Fn>
  void slot_write(Fn&& fn) {
    slot_->ver.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
    fn();
    slot_->ver.fetch_add(1, std::memory_order_release);  // even again
  }

  static void copy_label_n(char (&dst)[shmlayout::kMaxErrorMsg], const char* src) {
    std::strncpy(dst, src == nullptr ? "" : src, sizeof(dst) - 1);
    dst[sizeof(dst) - 1] = '\0';
  }

  void stamp_site(const char* label) {
    slot_write([&] { copy_label(slot_->site, label); });
  }

  void stamp_blocked(const char* label, int peer, int tag, int comm_id, bool active,
                     bool soft) {
    slot_write([&] {
      copy_label(slot_->site, label);
      copy_label(slot_->blocked.op, label);
      slot_->blocked.peer = peer;
      slot_->blocked.tag = tag;
      slot_->blocked.comm_id = comm_id;
      slot_->blocked.active = active ? 1 : 0;
      slot_->blocked.soft = soft ? 1 : 0;
    });
  }

  void clear_blocked() {
    slot_write([&] {
      slot_->blocked.active = 0;
      slot_->blocked.soft = 0;
    });
  }

  void clear_soft() {
    test_polls_ = 0;
    if (soft_blocked_) {
      soft_blocked_ = false;
      clear_blocked();
    }
  }

  void stamp_inflight() {
    slot_write([&] {
      slot_->inflight_count = static_cast<std::uint32_t>(pending_recvs_.size());
      const std::size_t n =
          std::min<std::size_t>(pending_recvs_.size(), shmlayout::kMaxInflight);
      for (std::size_t i = 0; i < n; ++i) {
        slot_->inflight[i].kind = 1;  // recv
        slot_->inflight[i].peer = pending_recvs_[i].peer;
        slot_->inflight[i].tag = pending_recvs_[i].tag;
      }
    });
  }

  void drop_pending(const Request* request) {
    for (auto it = pending_recvs_.begin(); it != pending_recvs_.end(); ++it) {
      if (it->request == request) {
        pending_recvs_.erase(it);
        stamp_inflight();
        return;
      }
    }
  }

  // -- fault plan: rank_kill ------------------------------------------------

  /// Probed at every posted operation (post_send/post_recv entry), making
  /// "the n-th posted MPI operation of rank r" the deterministic kill site.
  void maybe_kill() {
    if (!faultsim::Injector::armed()) {
      return;
    }
    faultsim::SiteContext where;
    where.rank = rank_;
    const auto fired =
        faultsim::Injector::instance().probe(faultsim::Site::kRankKill, where);
    if (!fired) {
      return;
    }
    // Stamp the handshake record first: this process may not get another
    // instruction after the raise, and the supervisor needs the record to
    // import the fired fault into the parent ledger.
    slot_->kill_action = static_cast<std::uint32_t>(fired->action);
    slot_->kill_spec_index = 0;
    slot_->kill_fired.store(1, std::memory_order_release);
    switch (fired->action) {
      case faultsim::Action::kSigkill:
        ::kill(::getpid(), SIGKILL);
        break;
      case faultsim::Action::kSigabrt:
        std::abort();
      case faultsim::Action::kHang:
        // A wedged rank: heartbeats stop, the process never exits on its
        // own. The supervisor's heartbeat timeout must catch it.
        stop_heartbeat();
        while (true) {
          std::this_thread::sleep_for(std::chrono::seconds(1));
        }
      default:
        break;
    }
  }

  void stop_heartbeat() {
    heartbeat_stop_.store(true, std::memory_order_relaxed);
    if (heartbeat_.joinable()) {
      heartbeat_.join();
    }
  }

  // -- transport proper -----------------------------------------------------

  /// Publish a record to dest's ring, blocking while it is full. The loop
  /// drains our own rings (a send-send cycle of full rings must not wedge),
  /// honours poisoning, and drops the message if the destination has already
  /// exited cleanly (an eager message nobody will ever receive — exactly
  /// what the thread backend's mailbox would have held until teardown).
  MpiError publish_blocking(int dest, int tag, const shmring::RecordHdr& hdr,
                            std::span<const std::byte> sig, std::span<const std::byte> body) {
    shmring::Ring ring = layout_.ring(base_, rank_, dest);
    if (shmring::try_publish(ring, hdr, sig, body)) {
      note_progress();
      return MpiError::kSuccess;
    }
    detail::bump(*proc_counters().ring_full_backoffs);
    stamp_blocked(current_op_label("MPI_Send"), dest, tag, hdr.comm_id,
                  /*active=*/true, /*soft=*/false);
    MpiError result = MpiError::kSuccess;
    int round = 0;
    while (true) {
      drain_rings();
      if (shmring::try_publish(ring, hdr, sig, body)) {
        note_progress();
        break;
      }
      if (result = poison_error(); result != MpiError::kSuccess) {
        break;
      }
      const auto dest_state =
          layout_.slot(base_, dest)->state.load(std::memory_order_acquire);
      if (dest_state == shmlayout::RankState::kExited ||
          dest_state == shmlayout::RankState::kAppError) {
        detail::bump(*proc_counters().sends_dropped_dead);
        break;  // destination gone for good: the message can never be drained
      }
      poll_backoff(round);
    }
    clear_blocked();
    return result;
  }

  /// Drain every ring targeting this rank, routing records into the local
  /// mailboxes (or straight into matching posted receives — the map-once
  /// unpack path).
  void drain_rings() {
    for (int src = 0; src < world(); ++src) {
      if (src == rank_) {
        continue;
      }
      shmring::Ring ring = layout_.ring(base_, src, rank_);
      shmring::drain(ring, [&](const shmring::RecordHdr& hdr, const std::byte* sig,
                               const std::byte* body) {
        const std::span<const Scalar> sig_span(reinterpret_cast<const Scalar*>(sig),
                                               hdr.sig_count);
        if (hdr.kind == shmring::RecordKind::kMessage) {
          route_payload(hdr.comm_id, src, hdr.tag,
                        std::span<const std::byte>(body, hdr.payload_bytes), sig_span);
        } else if (hdr.kind == shmring::RecordKind::kRendezvous) {
          receive_rendezvous(hdr, src, reinterpret_cast<const char*>(body));
        }
        note_progress();
      });
    }
  }

  void receive_rendezvous(const shmring::RecordHdr& hdr, int src, const char* name) {
    std::string error;
    shm::Segment seg = shm::Segment::open(name, &error);
    if (!seg.valid()) {
      return;  // sender died between create and publish — nothing to deliver
    }
    const auto* base = static_cast<const std::byte*>(seg.data());
    const std::size_t sig_count =
        seg.size() > hdr.payload_bytes ? seg.size() - hdr.payload_bytes : 0;
    route_payload(hdr.comm_id, src, hdr.tag,
                  std::span<const std::byte>(base, hdr.payload_bytes),
                  std::span<const Scalar>(
                      reinterpret_cast<const Scalar*>(base + hdr.payload_bytes), sig_count));
    seg.unlink();  // consumed: drop the name, the mapping dies with `seg`
  }

  /// Match-or-queue: deliver into the oldest accepting posted receive
  /// (specific vs wildcard by epoch, as one merged queue would), else copy
  /// into the unexpected queue.
  void route_payload(int comm_id, int src, int tag, std::span<const std::byte> payload,
                     std::span<const Scalar> sig) {
    Box& box = box_for(comm_id);
    std::deque<PostedRecv>& per_src = box.by_src[static_cast<std::size_t>(src)].posted;
    const auto specific = std::find_if(per_src.begin(), per_src.end(), [&](const PostedRecv& p) {
      return tag_accepts(p.tag, tag);
    });
    const auto wildcard =
        std::find_if(box.wildcard.begin(), box.wildcard.end(),
                     [&](const PostedRecv& p) { return tag_accepts(p.tag, tag); });
    const bool have_specific = specific != per_src.end();
    const bool have_wildcard = wildcard != box.wildcard.end();
    if (have_specific || have_wildcard) {
      const bool use_specific =
          have_specific && (!have_wildcard || specific->epoch < wildcard->epoch);
      PostedRecv posted = use_specific ? *specific : *wildcard;
      if (use_specific) {
        per_src.erase(specific);
      } else {
        box.wildcard.erase(wildcard);
      }
      deliver(src, tag, payload, sig, posted);
      return;
    }
    PMessage msg;
    msg.src = src;
    msg.tag = tag;
    msg.epoch = box.next_epoch++;
    msg.payload.assign(payload.begin(), payload.end());
    msg.signature.assign(sig.begin(), sig.end());
    box.by_src[static_cast<std::size_t>(src)].unexpected.push_back(std::move(msg));
  }

  /// Unpack into the posted buffer and complete the request — the same
  /// truncation and signature-matching rules as the thread backend's
  /// deliver (byte-like sides are untyped views and match anything).
  void deliver(int src, int tag, std::span<const std::byte> payload,
               std::span<const Scalar> sig, const PostedRecv& posted) {
    const std::size_t elem_packed = posted.type.packed_size();
    const std::size_t capacity_elems = posted.count;
    const std::size_t msg_elems = elem_packed != 0 ? payload.size() / elem_packed : 0;
    const bool truncated = msg_elems > capacity_elems;
    const std::size_t deliver_elems = truncated ? capacity_elems : msg_elems;
    posted.type.unpack(payload.data(), deliver_elems, posted.buffer);

    const auto all_byte_like = [](std::span<const Scalar> s) {
      for (const Scalar scalar : s) {
        if (scalar != Scalar::kByte && scalar != Scalar::kChar) {
          return false;
        }
      }
      return true;
    };
    std::vector<Scalar> recv_sig;
    posted.type.signature(deliver_elems, recv_sig);
    bool mismatch = false;
    if (!all_byte_like(recv_sig) && !all_byte_like(sig)) {
      mismatch = recv_sig.size() > sig.size();
      if (!mismatch) {
        for (std::size_t i = 0; i < recv_sig.size(); ++i) {
          if (recv_sig[i] != sig[i]) {
            mismatch = true;
            break;
          }
        }
      }
    }

    CUSAN_ASSERT(posted.request != nullptr);
    posted.request->status_ =
        Status{src, tag, deliver_elems * elem_packed,
               truncated ? MpiError::kTruncate : MpiError::kSuccess, mismatch};
    posted.request->complete_.store(true, std::memory_order_release);
    drop_pending(posted.request);
    note_progress();
  }

  /// Poll until `pred` holds: drain → predicate → poison → back off. The
  /// blocked op is stamped into the rank slot so the supervisor's
  /// all-blocked deadlock check and failure reports can describe it.
  template <typename Pred>
  MpiError blocked_wait(const char* label, int peer, int tag, int comm_id, Pred&& pred) {
    clear_soft();
    drain_rings();
    if (pred()) {
      return MpiError::kSuccess;
    }
    stamp_blocked(label, peer, tag, comm_id, /*active=*/true, /*soft=*/false);
    MpiError result = MpiError::kSuccess;
    int round = 0;
    while (true) {
      drain_rings();
      if (pred()) {
        break;
      }
      if (result = poison_error(); result != MpiError::kSuccess) {
        break;
      }
      poll_backoff(round);
    }
    clear_blocked();
    return result;
  }

  void* base_;
  shmlayout::Layout layout_;
  int rank_;
  std::string seg_prefix_;
  shmlayout::SegHeader* header_;
  shmlayout::RankSlot* slot_;

  std::map<int, Box> boxes_;
  std::vector<PendingRecv> pending_recvs_;
  std::vector<Scalar> sig_scratch_;
  std::vector<std::byte> send_scratch_;
  std::uint64_t rendezvous_seq_{0};

  int test_polls_{0};
  bool soft_blocked_{false};

  std::thread heartbeat_;
  std::atomic<bool> heartbeat_stop_{true};
};

// -- ProcCommImpl -----------------------------------------------------------

ProcCommImpl::ProcCommImpl(std::shared_ptr<ProcTransport> transport, int comm_id)
    : transport_(std::move(transport)), comm_id_(comm_id) {}

int ProcCommImpl::size() const { return transport_->world(); }

bool ProcCommImpl::deadlocked() const { return transport_->deadlocked(); }

DeadlockReport ProcCommImpl::deadlock_report() const { return transport_->deadlock_report(); }

std::string ProcCommImpl::failure_summary() const { return transport_->failure_summary(); }

/// The rank's k-th dup maps to comm_id parent+k+1 (MPI's same-order
/// collective-call rule makes the ids agree across ranks, mirroring the
/// thread backend's child-context numbering).
std::shared_ptr<CommImpl> ProcCommImpl::dup_for_rank(int rank) {
  (void)rank;  // one process == one rank; the transport is already ours
  const std::size_t k = dup_count_++;
  if (k >= children_.size()) {
    children_.push_back(
        std::make_shared<ProcCommImpl>(transport_, comm_id_ + static_cast<int>(k) + 1));
  }
  return children_[k];
}

MpiError ProcCommImpl::post_send(int src, int dest, int tag, const void* buf, std::size_t count,
                                 const Datatype& type) {
  (void)src;
  return transport_->post_send(comm_id_, dest, tag, buf, count, type);
}

MpiError ProcCommImpl::post_recv(int dest, int source, int tag, void* buf, std::size_t count,
                                 const Datatype& type, Request* request) {
  (void)dest;
  return transport_->post_recv(comm_id_, source, tag, buf, count, type, request);
}

MpiError ProcCommImpl::wait(int rank, Request** request, Status* status) {
  (void)rank;
  return transport_->wait(comm_id_, request, status);
}

MpiError ProcCommImpl::test(int rank, Request** request, bool* completed, Status* status) {
  (void)rank;
  return transport_->test(comm_id_, request, completed, status);
}

MpiError ProcCommImpl::waitany(int rank, std::span<Request*> requests, int* index,
                               Status* status) {
  (void)rank;
  return transport_->waitany(comm_id_, requests, index, status);
}

MpiError ProcCommImpl::probe(int rank, int source, int tag, bool blocking, bool* flag,
                             Status* status) {
  (void)rank;
  return transport_->probe(comm_id_, source, tag, blocking, flag, status);
}

void ProcCommImpl::complete_send_request(Request* req, std::size_t bytes) {
  transport_->complete_send_request(req, bytes);
}

MpiError ProcCommImpl::stall(int rank, const char* op_name, int peer, int tag,
                             std::uint64_t fault_id) {
  (void)rank;
  return transport_->stall(comm_id_, op_name, peer, tag, fault_id);
}

// -- proc:: free functions --------------------------------------------------

namespace proc {

std::chrono::milliseconds default_heartbeat_interval() {
  return std::chrono::milliseconds(
      std::clamp<std::uint64_t>(env_u64("CUSAN_HEARTBEAT_MS", 50), 5, 10'000));
}

std::uint32_t default_ring_bytes(int world_size) {
  const std::uint64_t kb = env_u64("CUSAN_SHM_RING_KB", 0);
  if (kb != 0) {
    return shmring::align_up(std::clamp<std::uint64_t>(kb * 1024, 16 * 1024, 1024 * 1024), 64);
  }
  // Scale so the N×N grid stays within ~64 MiB total.
  const std::uint64_t n = static_cast<std::uint64_t>(world_size);
  const std::uint64_t budget = 64ULL * 1024 * 1024 / (n * n);
  return shmring::align_up(std::clamp<std::uint64_t>(budget, 16 * 1024, 256 * 1024), 64);
}

std::uint32_t default_eager_max(std::uint32_t ring_bytes) {
  const std::uint64_t kb = env_u64("CUSAN_SHM_EAGER_KB", 0);
  if (kb != 0) {
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(kb * 1024, 1024, ring_bytes / 4));
  }
  return std::min<std::uint32_t>(ring_bytes / 8, 32 * 1024);
}

std::shared_ptr<ProcTransport> make_transport(void* base, const shmlayout::Layout& layout,
                                              int rank, std::string seg_prefix) {
  auto transport =
      std::make_shared<ProcTransport>(base, layout, rank, std::move(seg_prefix));
  g_current_transport = transport.get();
  return transport;
}

std::shared_ptr<CommImpl> root_comm(const std::shared_ptr<ProcTransport>& t) {
  return std::make_shared<ProcCommImpl>(t, /*comm_id=*/0);
}

void start(ProcTransport& t) { t.start(); }
void finalize_clean(ProcTransport& t) { t.finalize_clean(); }
void finalize_error(ProcTransport& t, const char* what) { t.finalize_error(what); }
void publish_result(ProcTransport& t, std::span<const std::byte> bytes) {
  t.publish_result(bytes);
}

ProcTransport* current_transport() { return g_current_transport; }

}  // namespace proc

}  // namespace mpisim
