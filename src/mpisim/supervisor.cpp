#include "mpisim/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <dirent.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "faultsim/injector.hpp"
#include "mpisim/proc_comm.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"

namespace mpisim {

namespace {

/// Exit code a child uses when rank_main threw (state kAppError carries the
/// message). Distinct from small tool exit codes so classification is
/// unambiguous.
constexpr int kAppErrorExit = 13;

/// Supervisor poll period: reap, heartbeats, deadlock quiet-check.
constexpr auto kMonitorPoll = std::chrono::milliseconds(2);

/// Post-poison grace before stragglers are SIGKILLed: survivors should exit
/// through their own poisoned-call error paths well within this.
constexpr auto kBackstopGrace = std::chrono::milliseconds(2000);

[[nodiscard]] std::uint64_t ms_to_ns(std::chrono::milliseconds ms) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count());
}

/// Names are unique per (pid, instance): one supervisor pid may run many
/// worlds (ctest runs a whole suite in-process).
std::atomic<std::uint64_t> g_world_instance{0};

}  // namespace

Supervisor::Supervisor(Options options) : options_(options) {
  CUSAN_ASSERT_MSG(options_.world_size > 0, "world size must be positive");
  children_.resize(static_cast<std::size_t>(options_.world_size));
  results_.resize(static_cast<std::size_t>(options_.world_size));
}

Supervisor::~Supervisor() {
  // run() tears down on every path; this is belt-and-braces for a
  // constructed-but-never-run supervisor.
  if (seg_.valid()) {
    seg_.unlink();
  }
}

void Supervisor::setup_segment() {
  if (options_.ring_bytes == 0) {
    options_.ring_bytes = proc::default_ring_bytes(options_.world_size);
  }
  if (options_.eager_max == 0) {
    options_.eager_max = proc::default_eager_max(options_.ring_bytes);
  }
  layout_ = shmlayout::Layout::compute(options_.world_size, options_.ring_bytes);
  const std::string name = shm::segment_name(
      ::getpid(), "w" + std::to_string(g_world_instance.fetch_add(1)));
  std::string error;
  seg_ = shm::Segment::create(name, layout_.total_bytes, &error);
  if (!seg_.valid()) {
    throw std::runtime_error("mpisim: cannot create world segment " + name + ": " + error);
  }
  shmlayout::SegHeader* header = layout_.header(seg_.data());
  header->magic = shmlayout::kMagic;
  header->world_size = options_.world_size;
  header->ring_bytes = options_.ring_bytes;
  header->eager_max = options_.eager_max;
  header->supervisor_pid = static_cast<std::int32_t>(::getpid());
  header->watchdog_ms = options_.watchdog.count() > 0
                            ? static_cast<std::uint32_t>(options_.watchdog.count())
                            : 0;
  header->heartbeat_ms = static_cast<std::uint32_t>(
      std::max<std::int64_t>(options_.heartbeat.count(), 1));
  header->progress.store(0, std::memory_order_relaxed);
  header->poison.store(shmlayout::Poison::kNone, std::memory_order_relaxed);
  header->failed_rank.store(-1, std::memory_order_relaxed);
  const std::uint64_t now = common::now_ns();
  for (int r = 0; r < options_.world_size; ++r) {
    // Pre-stamp heartbeats so a slow exec never looks stale, and for every
    // pair initialize the ring. The rest of the segment is ftruncate-zeroed,
    // which is exactly the initial state the slots/areas need.
    layout_.slot(seg_.data(), r)->heartbeat_ns.store(now, std::memory_order_relaxed);
    for (int d = 0; d < options_.world_size; ++d) {
      shmring::init(layout_.ring(seg_.data(), r, d), options_.ring_bytes);
    }
  }
}

void Supervisor::child_main(int rank, const std::function<void(Comm)>& rank_main) {
  // The child inherits the parent's mapping: it never reopens the world
  // segment, so even an unlinked segment stays reachable.
  auto transport = proc::make_transport(seg_.data(), layout_, rank, seg_.name());
  proc::start(*transport);
  int exit_code = 0;
  try {
    rank_main(Comm(proc::root_comm(transport), rank));
    proc::finalize_clean(*transport);
  } catch (const std::exception& e) {
    proc::finalize_error(*transport, e.what());
    exit_code = kAppErrorExit;
  } catch (...) {
    proc::finalize_error(*transport, "unknown exception");
    exit_code = kAppErrorExit;
  }
  std::fflush(nullptr);
  // _exit, not exit: atexit handlers belong to the parent image (metric
  // exporters, gtest listeners) and must not run in every rank.
  ::_exit(exit_code);
}

void Supervisor::run(const std::function<void(Comm)>& rank_main) {
  setup_segment();
  // Children inherit stdio buffers; flush now so a child's exit never
  // re-emits output the parent had buffered before the fork.
  std::fflush(nullptr);
  for (int r = 0; r < options_.world_size; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Fork failed mid-way: kill what we started, reap, tear down.
      for (int k = 0; k < r; ++k) {
        ::kill(children_[static_cast<std::size_t>(k)].pid, SIGKILL);
        ::waitpid(children_[static_cast<std::size_t>(k)].pid, nullptr, 0);
      }
      teardown();
      throw std::runtime_error("mpisim: fork failed for rank " + std::to_string(r));
    }
    if (pid == 0) {
      child_main(r, rank_main);  // never returns
    }
    children_[static_cast<std::size_t>(r)].pid = pid;
  }
  last_progress_ = 0;
  quiet_since_ns_ = common::now_ns();
  monitor();
  collect_results();
  teardown();
}

int Supervisor::live_unreaped() const {
  int n = 0;
  for (const Child& child : children_) {
    n += child.reaped ? 0 : 1;
  }
  return n;
}

void Supervisor::monitor() {
  while (live_unreaped() > 0) {
    reap_once();
    if (live_unreaped() == 0) {
      break;
    }
    check_heartbeats();
    const auto poison =
        layout_.header(seg_.data())->poison.load(std::memory_order_acquire);
    if (poison == shmlayout::Poison::kNone) {
      check_deadlock();
    } else {
      backstop_after_poison();
    }
    std::this_thread::sleep_for(kMonitorPoll);
  }
}

void Supervisor::reap_once() {
  for (int r = 0; r < options_.world_size; ++r) {
    Child& child = children_[static_cast<std::size_t>(r)];
    if (child.reaped) {
      continue;
    }
    int status = 0;
    const pid_t got = ::waitpid(child.pid, &status, WNOHANG);
    if (got == child.pid) {
      child.reaped = true;
      classify_death(r, status);
    }
  }
}

void Supervisor::classify_death(int rank, int wait_status) {
  Child& child = children_[static_cast<std::size_t>(rank)];
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == 0) {
      return;  // clean rank exit
    }
    if (code == kAppErrorExit) {
      // rank_main threw: an application error, not a rank failure — the
      // thread backend rethrows these, and so does World::run for us.
      if (first_app_error_.empty()) {
        const SlotSnap snap = read_slot(rank);
        const std::size_t len = strnlen(snap.error_msg, sizeof(snap.error_msg));
        first_app_error_.assign(snap.error_msg, len);
        if (first_app_error_.empty()) {
          first_app_error_ = "rank " + std::to_string(rank) + " failed";
        }
      }
      return;
    }
    declare_failure(rank, FailureKind::kExitCode, 0, code);
    return;
  }
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    if (child.backstop_kill) {
      return;  // our own post-poison cleanup, not a new failure
    }
    if (child.hb_kill_sent) {
      declare_failure(rank, FailureKind::kHeartbeatTimeout, sig, 0);
    } else {
      declare_failure(rank, FailureKind::kSignal, sig, 0);
    }
  }
}

void Supervisor::declare_failure(int rank, FailureKind kind, int signal, int exit_code) {
  if (failure_.has_value()) {
    return;  // only the first failure is reported; later deaths are fallout
  }
  const SlotSnap snap = read_slot(rank);
  const shmlayout::RankSlot* slot = layout_.slot(seg_.data(), rank);

  RankFailureReport report;
  report.rank = rank;
  report.kind = kind;
  report.signal = signal;
  report.exit_code = exit_code;
  report.last_heartbeat_ns = slot->heartbeat_ns.load(std::memory_order_relaxed);
  report.detected_ns = common::now_ns();
  report.site.assign(snap.site, strnlen(snap.site, sizeof(snap.site)));
  report.inflight_total = snap.inflight_count;
  const std::size_t table =
      std::min<std::size_t>(snap.inflight_count, shmlayout::kMaxInflight);
  for (std::size_t i = 0; i < table; ++i) {
    InflightOp op;
    op.is_send = snap.inflight[i].kind == 0;
    op.peer = snap.inflight[i].peer;
    op.tag = snap.inflight[i].tag;
    report.inflight.push_back(op);
  }

  // Persist into the segment *before* the poison release-store: survivors
  // (and post-mortem tooling) read it only after observing the poison.
  shmlayout::ShmFailureArea* area = layout_.failure(seg_.data());
  area->rank = rank;
  area->kind = static_cast<std::int32_t>(kind);
  area->signal = signal;
  area->exit_code = exit_code;
  area->last_heartbeat_ns = report.last_heartbeat_ns;
  area->detected_ns = report.detected_ns;
  std::memcpy(area->site, snap.site, sizeof(area->site));
  area->inflight_count = snap.inflight_count;
  std::memcpy(area->inflight, snap.inflight, sizeof(area->inflight));

  shmlayout::SegHeader* header = layout_.header(seg_.data());
  header->failed_rank.store(rank, std::memory_order_relaxed);
  header->poison.store(shmlayout::Poison::kRankFailure, std::memory_order_release);
  poisoned_at_ns_ = common::now_ns();

  // A rank_kill fault fired in the (now dead) child lives only in its slot
  // handshake: import it into the parent's ledger as surfaced-by-report, so
  // sweep accounting holds across the process boundary.
  if (slot->kill_fired.load(std::memory_order_acquire) != 0) {
    faultsim::FiredFault entry;
    entry.site = faultsim::Site::kRankKill;
    entry.action = static_cast<faultsim::Action>(slot->kill_action);
    entry.where.rank = rank;
    entry.surfaced = faultsim::Channel::kFailureReport;
    faultsim::Injector::instance().import_fired({entry});
  }

  failure_ = report;
  obs::metric("mpisim.proc.rank_failures").increment();
  obs::emit_diagnostic(obs::Diagnostic{"mpisim.rank_failure", obs::Severity::kError, rank,
                                       report.to_string(), 0});
}

void Supervisor::check_heartbeats() {
  // Staleness threshold: generous multiple of the stamping interval, so a
  // descheduled-but-alive rank is never misdeclared on a loaded host.
  const std::uint64_t stale_ns =
      std::max<std::uint64_t>(8 * ms_to_ns(options_.heartbeat), ms_to_ns(std::chrono::milliseconds(250)));
  const std::uint64_t now = common::now_ns();
  for (int r = 0; r < options_.world_size; ++r) {
    Child& child = children_[static_cast<std::size_t>(r)];
    if (child.reaped || child.hb_kill_sent) {
      continue;
    }
    const shmlayout::RankSlot* slot = layout_.slot(seg_.data(), r);
    const auto state = slot->state.load(std::memory_order_acquire);
    if (state == shmlayout::RankState::kExited || state == shmlayout::RankState::kAppError) {
      continue;  // between finalize and _exit; reap will get it
    }
    const std::uint64_t beat = slot->heartbeat_ns.load(std::memory_order_relaxed);
    if (now > beat && now - beat >= stale_ns) {
      // Wedged (or livelocked) rank: kill it; classification on reap maps
      // our SIGKILL to FailureKind::kHeartbeatTimeout.
      child.hb_kill_sent = true;
      ::kill(child.pid, SIGKILL);
    }
  }
}

void Supervisor::check_deadlock() {
  if (options_.watchdog.count() <= 0) {
    return;
  }
  shmlayout::SegHeader* header = layout_.header(seg_.data());
  const std::uint64_t progress = header->progress.load(std::memory_order_relaxed);
  const std::uint64_t now = common::now_ns();
  if (progress != last_progress_) {
    last_progress_ = progress;
    quiet_since_ns_ = now;
    return;
  }
  // All unreaped, still-running ranks must be blocked (hard or soft) with
  // at least one of them present; a rank still computing between MPI calls
  // vetoes the declaration exactly as in the thread backend.
  int blocked_count = 0;
  for (int r = 0; r < options_.world_size; ++r) {
    const Child& child = children_[static_cast<std::size_t>(r)];
    if (child.reaped) {
      continue;
    }
    const auto state =
        layout_.slot(seg_.data(), r)->state.load(std::memory_order_acquire);
    if (state == shmlayout::RankState::kExited || state == shmlayout::RankState::kAppError) {
      continue;
    }
    const SlotSnap snap = read_slot(r);
    if (snap.blocked.active == 0 && snap.blocked.soft == 0) {
      quiet_since_ns_ = now;  // someone is runnable: restart the quiet clock
      return;
    }
    ++blocked_count;
  }
  if (blocked_count == 0 || now - quiet_since_ns_ < ms_to_ns(options_.watchdog)) {
    return;
  }

  // Declare: write the report area in full, then poison (release). Blocked
  // ranks poll the poison word and return kDeadlock.
  shmlayout::ShmDeadlockArea* area = layout_.deadlock(seg_.data());
  DeadlockReport report;
  report.world_size = options_.world_size;
  std::uint32_t count = 0;
  for (int r = 0; r < options_.world_size; ++r) {
    if (children_[static_cast<std::size_t>(r)].reaped) {
      continue;
    }
    const auto state =
        layout_.slot(seg_.data(), r)->state.load(std::memory_order_acquire);
    if (state == shmlayout::RankState::kExited || state == shmlayout::RankState::kAppError) {
      continue;
    }
    const SlotSnap snap = read_slot(r);
    if (snap.blocked.active == 0 && snap.blocked.soft == 0) {
      continue;
    }
    BlockedOp op;
    op.rank = r;
    op.op.assign(snap.blocked.op, strnlen(snap.blocked.op, sizeof(snap.blocked.op)));
    op.peer = snap.blocked.peer;
    op.tag = snap.blocked.tag;
    op.comm_id = snap.blocked.comm_id;
    op.soft = snap.blocked.soft != 0;
    if (count < shmlayout::kMaxDeadlockEntries) {
      shmlayout::ShmDeadlockEntry& entry = area->entries[count];
      entry.rank = r;
      entry.peer = op.peer;
      entry.tag = op.tag;
      entry.comm_id = op.comm_id;
      entry.soft = snap.blocked.soft;
      std::memcpy(entry.op, snap.blocked.op, sizeof(entry.op));
    }
    ++count;
    report.blocked.push_back(std::move(op));
  }
  area->count = std::min<std::uint32_t>(count, shmlayout::kMaxDeadlockEntries);
  layout_.header(seg_.data())->poison.store(shmlayout::Poison::kDeadlock,
                                            std::memory_order_release);
  poisoned_at_ns_ = common::now_ns();
  deadlock_ = std::move(report);
  obs::metric("mpisim.deadlocks_declared").increment();
  obs::emit_diagnostic(obs::Diagnostic{"mpisim.deadlock", obs::Severity::kError,
                                       /*rank=*/-1, deadlock_.to_string(), 0});
}

void Supervisor::backstop_after_poison() {
  // Survivors observe the poison in their next blocked poll and unwind on
  // their own. If one is stuck outside the transport (user code looping),
  // the backstop guarantees supervisor termination regardless.
  const std::uint64_t grace =
      ms_to_ns(kBackstopGrace) +
      (options_.watchdog.count() > 0 ? 2 * ms_to_ns(options_.watchdog) : 0);
  if (common::now_ns() - poisoned_at_ns_ < grace) {
    return;
  }
  for (Child& child : children_) {
    if (!child.reaped && !child.backstop_kill) {
      child.backstop_kill = true;
      ::kill(child.pid, SIGKILL);
      obs::metric("mpisim.proc.backstop_kills").increment();
    }
  }
}

Supervisor::SlotSnap Supervisor::read_slot(int rank) const {
  const shmlayout::RankSlot* slot = layout_.slot(seg_.data(), rank);
  SlotSnap snap;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t v1 = slot->ver.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) {
      std::this_thread::yield();
      continue;
    }
    snap.blocked = slot->blocked;
    std::memcpy(snap.site, slot->site, sizeof(snap.site));
    snap.inflight_count = slot->inflight_count;
    std::memcpy(snap.inflight, slot->inflight, sizeof(snap.inflight));
    std::memcpy(snap.error_msg, slot->error_msg, sizeof(snap.error_msg));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot->ver.load(std::memory_order_relaxed) == v1) {
      return snap;
    }
  }
  // A rank killed mid-write leaves ver odd forever: accept the (possibly
  // torn) last copy — it only feeds diagnostics, never matching decisions.
  snap.blocked = slot->blocked;
  std::memcpy(snap.site, slot->site, sizeof(snap.site));
  snap.inflight_count = slot->inflight_count;
  std::memcpy(snap.inflight, slot->inflight, sizeof(snap.inflight));
  std::memcpy(snap.error_msg, slot->error_msg, sizeof(snap.error_msg));
  return snap;
}

void Supervisor::collect_results() {
  for (int r = 0; r < options_.world_size; ++r) {
    const shmlayout::RankSlot* slot = layout_.slot(seg_.data(), r);
    const std::uint64_t bytes = slot->result_bytes.load(std::memory_order_acquire);
    if (bytes == 0) {
      continue;
    }
    const std::string name = seg_.name() + ".res." + std::to_string(r);
    std::string error;
    shm::Segment seg = shm::Segment::open(name, &error);
    if (seg.valid() && seg.size() >= bytes) {
      const auto* data = static_cast<const std::byte*>(seg.data());
      results_[static_cast<std::size_t>(r)].assign(data, data + bytes);
    }
    if (seg.valid()) {
      seg.unlink();
    }
  }
}

void Supervisor::teardown() {
  if (!seg_.valid()) {
    return;
  }
  // Sweep every auxiliary segment of this world (rendezvous segments of
  // killed ranks, result segments a crash left behind): they all share the
  // world name as prefix. Zero leaked names is a CI-checked invariant
  // (tools/shm_gc --check).
  const std::string prefix = seg_.name().substr(1) + ".";  // /dev/shm names: no '/'
  if (DIR* dir = ::opendir("/dev/shm")) {
    std::vector<std::string> doomed;
    while (const dirent* entry = ::readdir(dir)) {
      if (std::strncmp(entry->d_name, prefix.c_str(), prefix.size()) == 0) {
        doomed.emplace_back(entry->d_name);
      }
    }
    ::closedir(dir);
    for (const std::string& name : doomed) {
      ::shm_unlink(("/" + name).c_str());
    }
  }
  seg_.unlink();
  seg_.reset();
}

}  // namespace mpisim
