// The proc backend's child-side engine. After the supervisor forks a rank,
// the child builds one ProcTransport over the inherited world-segment
// mapping: per-communicator mailboxes with the exact matching semantics of
// the thread backend (per-source FIFO, wildcard min-epoch scan, schedule-
// controller choice points), fed by draining the rank's column of SPSC
// shared-memory rings. Blocking calls poll: drain own rings → check the
// predicate → check the poison word → back off. There is no cross-process
// lock to block on — which is precisely why a dying peer can never wedge a
// survivor (the supervisor's poison store is the only wakeup needed).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpisim/comm_impl.hpp"
#include "mpisim/shm_layout.hpp"

namespace mpisim {

class ProcTransport;

/// One communicator (world or dup) of a forked rank; thin facade over the
/// shared ProcTransport.
class ProcCommImpl final : public CommImpl {
 public:
  ProcCommImpl(std::shared_ptr<ProcTransport> transport, int comm_id);

  [[nodiscard]] int size() const override;
  [[nodiscard]] int comm_id() const override { return comm_id_; }
  [[nodiscard]] bool deadlocked() const override;
  [[nodiscard]] DeadlockReport deadlock_report() const override;
  [[nodiscard]] std::string failure_summary() const override;
  [[nodiscard]] std::shared_ptr<CommImpl> dup_for_rank(int rank) override;

  MpiError post_send(int src, int dest, int tag, const void* buf, std::size_t count,
                     const Datatype& type) override;
  MpiError post_recv(int dest, int source, int tag, void* buf, std::size_t count,
                     const Datatype& type, Request* request) override;
  MpiError wait(int rank, Request** request, Status* status) override;
  MpiError test(int rank, Request** request, bool* completed, Status* status) override;
  MpiError waitany(int rank, std::span<Request*> requests, int* index, Status* status) override;
  MpiError probe(int rank, int source, int tag, bool blocking, bool* flag,
                 Status* status) override;
  void complete_send_request(Request* req, std::size_t bytes) override;
  MpiError stall(int rank, const char* op_name, int peer, int tag,
                 std::uint64_t fault_id) override;

 private:
  std::shared_ptr<ProcTransport> transport_;
  int comm_id_;
  std::size_t dup_count_{0};
  std::vector<std::shared_ptr<ProcCommImpl>> children_;
};

namespace proc {

/// Per-rank heartbeat stamping interval: CUSAN_HEARTBEAT_MS, default 50 ms.
[[nodiscard]] std::chrono::milliseconds default_heartbeat_interval();

/// Per-ring data bytes: CUSAN_SHM_RING_KB override, else scaled so the
/// N×N grid stays within ~64 MiB (min 16 KiB, max 256 KiB per ring).
[[nodiscard]] std::uint32_t default_ring_bytes(int world_size);

/// Largest eager record (header+signature+payload); bigger payloads take
/// the rendezvous path. CUSAN_SHM_EAGER_KB override, clamped to ring/8.
[[nodiscard]] std::uint32_t default_eager_max(std::uint32_t ring_bytes);

/// Child-side bootstrap, called once right after fork. `seg_prefix` is the
/// world-segment name without the leading '/' suffix part (used to derive
/// rendezvous / result segment names).
[[nodiscard]] std::shared_ptr<ProcTransport> make_transport(void* base,
                                                            const shmlayout::Layout& layout,
                                                            int rank,
                                                            std::string seg_prefix);

/// The world communicator (comm_id 0) of a transport.
[[nodiscard]] std::shared_ptr<CommImpl> root_comm(const std::shared_ptr<ProcTransport>& t);

/// Stamp state kRunning and start the heartbeat thread.
void start(ProcTransport& t);
/// Clean exit: state kExited, progress bump, heartbeat stopped.
void finalize_clean(ProcTransport& t);
/// rank_main threw: record the message, state kAppError, heartbeat stopped.
void finalize_error(ProcTransport& t, const char* what);
/// Publish this rank's opaque result blob (a named segment the supervisor
/// collects at teardown).
void publish_result(ProcTransport& t, std::span<const std::byte> bytes);

/// The transport of the current (child) process, if any — set between
/// make_transport and process exit; World::publish_result routes here.
[[nodiscard]] ProcTransport* current_transport();

}  // namespace proc

}  // namespace mpisim
