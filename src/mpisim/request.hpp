// Non-blocking communication requests. Requests are heap-allocated by
// isend/irecv and destroyed by wait/test-success; the pointer value serves
// as MUST's stable key for its request-fiber mapping.
#pragma once

#include <atomic>

#include "mpisim/comm.hpp"

namespace mpisim {

class Request {
 public:
  enum class Kind : std::uint8_t { kSend, kRecv };

  [[nodiscard]] Kind kind() const { return kind_; }
  /// The user buffer of the operation (send or recv side).
  [[nodiscard]] const void* buffer() const { return buffer_; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] const Datatype& datatype() const { return type_; }
  /// Envelope (dest for sends, source for recvs; wildcards stay -1) — used
  /// by the deadlock watchdog's blocked-op diagnostics.
  [[nodiscard]] int peer() const { return peer_; }
  [[nodiscard]] int tag() const { return tag_; }

 private:
  friend class CommImpl;
  friend class ProcTransport;  ///< proc-backend engine (see proc_comm.cpp)

  Request(Kind kind, const void* buffer, std::size_t count, Datatype type, int peer, int tag)
      : kind_(kind), buffer_(buffer), count_(count), type_(std::move(type)), peer_(peer),
        tag_(tag) {}

  /// Completion flag. The completer writes status_ first, then stores true
  /// with release; the owning rank loads with acquire before reading
  /// status_ or deleting the request. Only the posting rank ever waits on,
  /// tests or frees a request, so no further synchronization is needed.
  [[nodiscard]] bool complete() const { return complete_.load(std::memory_order_acquire); }

  Kind kind_;
  const void* buffer_;
  std::size_t count_;
  Datatype type_;
  int peer_{-1};
  int tag_{-1};
  std::atomic<bool> complete_{false};
  Status status_{};  ///< published by the release-store on complete_
};

}  // namespace mpisim
