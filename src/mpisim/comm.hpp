// The simulator's communicator: point-to-point messaging with MPI matching
// semantics (source/tag matching incl. wildcards, FIFO per channel, eager
// buffered sends, posted-receive + unexpected-message queues) and tree
// collectives (binomial barrier/bcast/reduce/gather/scatter, recursive-
// doubling allreduce/allgather) built on the same p2p engine with reserved
// internal tags.
//
// Internally the engine is sharded: one mailbox per destination rank with
// its own lock and per-source FIFO sub-queues (ANY_SOURCE takes a
// documented scan-all-channels slow path ordered by a channel epoch
// counter), and completions wake only the involved rank via its waiter
// slot — the sole broadcast wakeup is deadlock declaration/poisoning. See
// docs/architecture.md ("Communication engine") and mpisim/counters.hpp
// for the observable contention counters.
//
// Ranks run as threads within one process (see world.hpp); buffers may be
// cusim device pointers — like a CUDA-aware MPI library, the engine copies
// from/to them directly without any stream synchronization, which is
// precisely the behaviour that makes user-side synchronization mandatory
// (paper §III-D).
#pragma once

#include <cstdint>
#include <span>
#include <memory>

#include "mpisim/datatype.hpp"
#include "mpisim/deadlock.hpp"

namespace mpisim {

enum class MpiError : int {
  kSuccess = 0,
  kTruncate,     ///< message longer than the posted receive buffer
  kInvalidArg,
  kInvalidRank,
  kRequestNull,
  kDeadlock,     ///< watchdog declared a deadlock; the blocking call was abandoned
  kRankFailed,   ///< a peer rank died (proc backend); comms are poisoned ULFM-style
  kOther,        ///< injected fault (MPI_ERR_OTHER)
};

[[nodiscard]] constexpr const char* to_string(MpiError e) {
  switch (e) {
    case MpiError::kSuccess:
      return "MPI_SUCCESS";
    case MpiError::kTruncate:
      return "MPI_ERR_TRUNCATE";
    case MpiError::kInvalidArg:
      return "MPI_ERR_ARG";
    case MpiError::kInvalidRank:
      return "MPI_ERR_RANK";
    case MpiError::kRequestNull:
      return "MPI_ERR_REQUEST";
    case MpiError::kDeadlock:
      return "MPI_ERR_DEADLOCK";
    case MpiError::kRankFailed:
      return "MPI_ERR_PROC_FAILED";
    case MpiError::kOther:
      return "MPI_ERR_OTHER";
  }
  return "?";
}

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source{-1};
  int tag{-1};
  std::size_t received_bytes{};
  MpiError error{MpiError::kSuccess};
  /// The sender's scalar type signature differs from the receiver's (MPI
  /// makes this erroneous but delivers bytes anyway; MUST reports it).
  bool signature_mismatch{false};
};

class Request;
class CommImpl;

/// Create the shared state for a communicator over `size` ranks (used by
/// World; applications normally never call this directly). Without a
/// tracker the communicator has no deadlock watchdog (blocking calls can
/// hang forever, the pre-watchdog behaviour).
[[nodiscard]] std::shared_ptr<CommImpl> make_comm_impl(int size);
[[nodiscard]] std::shared_ptr<CommImpl> make_comm_impl(
    int size, std::shared_ptr<ProgressTracker> tracker);

/// A rank's view of a communicator (lightweight value handle).
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<CommImpl> impl, int rank) : impl_(std::move(impl)), rank_(rank) {}

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// MPI_Comm_dup: collective; every rank's k-th dup call yields a handle to
  /// the same fresh communication context, fully isolated from the parent
  /// (its own matching queues).
  MpiError dup(Comm* out);

  // -- Point-to-point -----------------------------------------------------------

  MpiError send(const void* buf, std::size_t count, const Datatype& type, int dest, int tag);
  MpiError recv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                Status* status = nullptr);
  MpiError isend(const void* buf, std::size_t count, const Datatype& type, int dest, int tag,
                 Request** request);
  MpiError irecv(void* buf, std::size_t count, const Datatype& type, int source, int tag,
                 Request** request);

  /// Completes the request, frees it and nulls the handle (MPI_Wait).
  MpiError wait(Request** request, Status* status = nullptr);
  /// Non-blocking completion check; on completion behaves like wait.
  MpiError test(Request** request, bool* completed, Status* status = nullptr);
  MpiError waitall(std::span<Request*> requests);
  /// Blocks until any request completes; completes it (like wait) and
  /// reports its position in `index`. All-null input yields kRequestNull.
  MpiError waitany(std::span<Request*> requests, int* index, Status* status = nullptr);

  /// Block until a matching message is available without receiving it
  /// (MPI_Probe). Wildcards allowed; status reports the actual envelope.
  MpiError probe(int source, int tag, Status* status);
  /// Non-blocking probe (MPI_Iprobe).
  MpiError iprobe(int source, int tag, bool* flag, Status* status = nullptr);

  MpiError sendrecv(const void* sendbuf, std::size_t sendcount, const Datatype& sendtype,
                    int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                    const Datatype& recvtype, int source, int recvtag,
                    Status* status = nullptr);

  // -- Collectives -----------------------------------------------------------------

  MpiError barrier();
  MpiError bcast(void* buf, std::size_t count, const Datatype& type, int root);
  MpiError reduce(const void* sendbuf, void* recvbuf, std::size_t count, const Datatype& type,
                  ReduceOp op, int root);
  MpiError allreduce(const void* sendbuf, void* recvbuf, std::size_t count, const Datatype& type,
                     ReduceOp op);
  /// Gather `count` elements from every rank into recvbuf (size*count
  /// elements, ordered by rank) on every rank.
  MpiError allgather(const void* sendbuf, std::size_t count, const Datatype& type, void* recvbuf);
  /// Gather `count` elements from every rank at `root` (recvbuf used only
  /// there, size*count elements ordered by rank).
  MpiError gather(const void* sendbuf, std::size_t count, const Datatype& type, void* recvbuf,
                  int root);
  /// Scatter size*count elements from `root`'s sendbuf: rank r receives
  /// slice r (`count` elements) into recvbuf.
  MpiError scatter(const void* sendbuf, std::size_t count, const Datatype& type, void* recvbuf,
                   int root);

  // -- Deadlock diagnosis -----------------------------------------------------------

  /// True once the progress watchdog declared a deadlock on this
  /// communicator's world. All blocking calls then return kDeadlock.
  [[nodiscard]] bool deadlock_detected() const;
  /// The per-rank blocked-op table captured at declaration time (empty if
  /// no deadlock was declared).
  [[nodiscard]] DeadlockReport deadlock_report() const;
  /// One-line summary of the rank failure that poisoned this world ("" when
  /// none; only the proc backend can observe one).
  [[nodiscard]] std::string failure_summary() const;

 private:
  [[nodiscard]] bool rank_valid(int r) const { return r >= 0 && r < size(); }

  std::shared_ptr<CommImpl> impl_;
  int rank_{-1};
};

}  // namespace mpisim
