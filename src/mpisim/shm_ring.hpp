// SPSC byte ring over raw shared memory: one producer rank, one consumer
// rank, variable-length records. Records are always contiguous (a producer
// that would wrap publishes a pad record to the end of the buffer first),
// so payloads can be packed into and unpacked straight out of the mapped
// segment — the "map once" eager path.
//
// Publishing protocol: the producer memcpys the whole record (header
// included) into the ring, then advances `head` with one release store;
// the consumer sees either the old head (no record) or the new head (whole
// record), so a producer killed mid-publish leaves the ring fully intact —
// the half-written bytes are behind `head` and invisible. That is the
// orphan-ring recovery invariant: no lock is ever held in shared memory,
// and a dead peer can only ever starve its own channels, which the
// supervisor's failure poisoning then unblocks.
//
// Capacity and every record size are multiples of 64, so the tail-end
// remainder of the buffer always has room for a pad record header.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace mpisim::shmring {

inline constexpr std::uint32_t kAlign = 64;

struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> head;  ///< bytes ever published (producer-owned)
  char pad0[56];
  std::atomic<std::uint64_t> tail;  ///< bytes ever consumed (consumer-owned)
  char pad1[56];
  std::uint32_t capacity;           ///< data bytes, multiple of 64
  char pad2[60];
};
static_assert(sizeof(RingHdr) == 192);

enum class RecordKind : std::uint16_t {
  kPad = 0,      ///< skip to the start of the buffer
  kMessage = 1,  ///< eager payload inline
  kRendezvous = 2,  ///< body is the NUL-terminated rendezvous segment name
};

struct RecordHdr {
  std::uint32_t size;           ///< total record bytes incl. header, 64-aligned
  RecordKind kind;
  std::uint16_t reserved;
  std::int32_t tag;
  std::int32_t comm_id;
  std::uint64_t payload_bytes;  ///< packed payload size (rendezvous: in its segment)
  std::uint32_t sig_count;      ///< scalar signature entries following the header
  std::uint32_t body_offset;    ///< record-relative offset of the body
};
static_assert(sizeof(RecordHdr) == 32);

/// A producer's or consumer's view: header plus the data area that follows.
struct Ring {
  RingHdr* hdr{nullptr};
  std::byte* data{nullptr};

  [[nodiscard]] bool valid() const { return hdr != nullptr; }
};

[[nodiscard]] inline std::size_t ring_footprint(std::uint32_t capacity) {
  return sizeof(RingHdr) + capacity;
}

inline void init(Ring ring, std::uint32_t capacity) {
  ring.hdr->head.store(0, std::memory_order_relaxed);
  ring.hdr->tail.store(0, std::memory_order_relaxed);
  ring.hdr->capacity = capacity;
}

[[nodiscard]] inline Ring ring_at(std::byte* base) {
  return Ring{reinterpret_cast<RingHdr*>(base), base + sizeof(RingHdr)};
}

[[nodiscard]] constexpr std::uint32_t align_up(std::uint64_t n, std::uint64_t a) {
  return static_cast<std::uint32_t>((n + a - 1) / a * a);
}

/// Total record size for a signature + body of the given lengths.
[[nodiscard]] constexpr std::uint32_t record_size(std::size_t sig_count, std::size_t body_bytes) {
  const std::uint64_t body_off = align_up(sizeof(RecordHdr) + sig_count, 8);
  return align_up(body_off + body_bytes, kAlign);
}

/// Try to publish one record; false when the ring lacks space (caller backs
/// off, drains its own rings and re-checks poison). `hdr.size`,
/// `hdr.body_offset` are filled in here.
inline bool try_publish(Ring ring, RecordHdr hdr, std::span<const std::byte> sig,
                        std::span<const std::byte> body) {
  const std::uint64_t cap = ring.hdr->capacity;
  hdr.sig_count = static_cast<std::uint32_t>(sig.size());
  hdr.body_offset = align_up(sizeof(RecordHdr) + sig.size(), 8);
  hdr.size = align_up(hdr.body_offset + body.size(), kAlign);
  std::uint64_t head = ring.hdr->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring.hdr->tail.load(std::memory_order_acquire);
  std::uint64_t off = head % cap;
  const std::uint64_t contig = cap - off;
  const std::uint64_t pad = hdr.size > contig ? contig : 0;
  if (head + pad + hdr.size - tail > cap) {
    return false;
  }
  if (pad != 0) {
    auto* pad_hdr = reinterpret_cast<RecordHdr*>(ring.data + off);
    std::memset(pad_hdr, 0, sizeof(RecordHdr));
    pad_hdr->size = static_cast<std::uint32_t>(pad);
    pad_hdr->kind = RecordKind::kPad;
    head += pad;
    off = 0;
  }
  std::byte* dst = ring.data + off;
  std::memcpy(dst, &hdr, sizeof(RecordHdr));
  if (!sig.empty()) {
    std::memcpy(dst + sizeof(RecordHdr), sig.data(), sig.size());
  }
  if (!body.empty()) {
    std::memcpy(dst + hdr.body_offset, body.data(), body.size());
  }
  ring.hdr->head.store(head + hdr.size, std::memory_order_release);
  return true;
}

/// Drain every complete record, invoking
/// `fn(const RecordHdr&, const std::byte* sig, const std::byte* body)` with
/// pointers into the mapped ring (valid only during the call — the tail
/// advances right after, releasing the space to the producer). Returns the
/// number of message records consumed.
template <typename Fn>
inline int drain(Ring ring, Fn&& fn) {
  const std::uint64_t cap = ring.hdr->capacity;
  std::uint64_t tail = ring.hdr->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = ring.hdr->head.load(std::memory_order_acquire);
  int consumed = 0;
  while (tail < head) {
    const auto* hdr = reinterpret_cast<const RecordHdr*>(ring.data + tail % cap);
    const std::uint32_t size = hdr->size;
    if (hdr->kind != RecordKind::kPad) {
      const auto* rec = ring.data + tail % cap;
      fn(*hdr, rec + sizeof(RecordHdr), rec + hdr->body_offset);
      ++consumed;
    }
    tail += size;
    ring.hdr->tail.store(tail, std::memory_order_release);
  }
  return consumed;
}

}  // namespace mpisim::shmring
