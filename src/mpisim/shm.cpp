#include "mpisim/shm.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mpisim::shm {

const std::string& boot_id() {
  static const std::string id = [] {
    std::string out = "00000000";
    FILE* f = std::fopen("/proc/sys/kernel/random/boot_id", "re");
    if (f != nullptr) {
      char buf[64] = {};
      const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      std::fclose(f);
      std::string hex;
      for (std::size_t i = 0; i < n && hex.size() < 8; ++i) {
        if (std::isxdigit(static_cast<unsigned char>(buf[i])) != 0) {
          hex.push_back(buf[i]);
        }
      }
      if (hex.size() == 8) {
        out = hex;
      }
    }
    return out;
  }();
  return id;
}

std::string segment_name(pid_t owner, const std::string& suffix) {
  return "/cusan." + boot_id() + "." + std::to_string(static_cast<long>(owner)) + "." + suffix;
}

Segment::Segment(Segment&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      name_(std::move(other.name_)) {
  other.name_.clear();
}

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = std::exchange(other.base_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    name_ = std::move(other.name_);
    other.name_.clear();
  }
  return *this;
}

Segment::~Segment() { reset(); }

void Segment::reset() {
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
    bytes_ = 0;
  }
}

void Segment::unlink() {
  if (!name_.empty()) {
    ::shm_unlink(name_.c_str());
  }
}

Segment Segment::create(const std::string& name, std::size_t bytes, std::string* error) {
  Segment seg;
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "shm_open(" + name + "): " + std::strerror(errno);
    }
    return seg;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    if (error != nullptr) {
      *error = "ftruncate(" + name + "): " + std::strerror(errno);
    }
    ::close(fd);
    ::shm_unlink(name.c_str());
    return seg;
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (error != nullptr) {
      *error = "mmap(" + name + "): " + std::strerror(errno);
    }
    ::shm_unlink(name.c_str());
    return seg;
  }
  seg.base_ = base;
  seg.bytes_ = bytes;
  seg.name_ = name;
  return seg;
}

Segment Segment::open(const std::string& name, std::string* error) {
  Segment seg;
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "shm_open(" + name + "): " + std::strerror(errno);
    }
    return seg;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    if (error != nullptr) {
      *error = "fstat(" + name + "): " + std::strerror(errno);
    }
    ::close(fd);
    return seg;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (error != nullptr) {
      *error = "mmap(" + name + "): " + std::strerror(errno);
    }
    return seg;
  }
  seg.base_ = base;
  seg.bytes_ = bytes;
  seg.name_ = name;
  return seg;
}

namespace {

/// Parse `cusan.<boot8>.<pid>.<suffix>` (no leading '/'); false if the name
/// is not ours or malformed (malformed cusan.* names count as stale:
/// nothing we ship produces them, so they are junk from a crashed writer).
bool parse_name(const std::string& file, std::string* boot, long* pid) {
  constexpr const char kPrefix[] = "cusan.";
  if (file.rfind(kPrefix, 0) != 0) {
    return false;
  }
  const std::size_t boot_start = sizeof(kPrefix) - 1;
  const std::size_t boot_end = file.find('.', boot_start);
  if (boot_end == std::string::npos || boot_end - boot_start != 8) {
    return false;
  }
  const std::size_t pid_end = file.find('.', boot_end + 1);
  if (pid_end == std::string::npos || pid_end == boot_end + 1) {
    return false;
  }
  char* end = nullptr;
  const std::string pid_str = file.substr(boot_end + 1, pid_end - boot_end - 1);
  const long parsed = std::strtol(pid_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0) {
    return false;
  }
  *boot = file.substr(boot_start, 8);
  *pid = parsed;
  return true;
}

}  // namespace

GcStats gc_stale_segments(bool remove) {
  GcStats stats;
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) {
    return stats;
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    if (file.rfind("cusan.", 0) == 0) {
      names.push_back(file);
    }
  }
  ::closedir(dir);
  for (const std::string& file : names) {
    ++stats.scanned;
    std::string boot;
    long pid = 0;
    bool stale;
    if (!parse_name(file, &boot, &pid)) {
      stale = true;  // malformed cusan.* name: junk from a crashed writer
    } else if (boot != boot_id()) {
      stale = true;  // previous boot: the owner is definitionally gone
    } else {
      // Owner liveness. EPERM means "exists but not ours" — alive.
      stale = ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
    }
    if (!stale) {
      ++stats.alive;
      stats.alive_names.push_back(file);
      continue;
    }
    ++stats.stale;
    stats.stale_names.push_back(file);
    if (remove && ::shm_unlink(("/" + file).c_str()) == 0) {
      ++stats.removed;
    }
  }
  return stats;
}

}  // namespace mpisim::shm
