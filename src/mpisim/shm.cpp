#include "mpisim/shm.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/thread_context.hpp"

namespace mpisim::shm {

namespace {

// The calling thread's session key (0: none). Fits in a void* for the
// ThreadContext slot; forked rank processes inherit it from the forking
// thread automatically.
constinit thread_local std::uint64_t t_session_id = 0;

const std::size_t kSessionIdSlot = common::ThreadContext::register_slot(
    [] { return reinterpret_cast<void*>(static_cast<std::uintptr_t>(t_session_id)); },
    [](void* value) {
      t_session_id = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(value));
    });

}  // namespace

std::uint64_t current_session_id() { return t_session_id; }

ScopedSessionId::ScopedSessionId(std::uint64_t id) : previous_(t_session_id) {
  t_session_id = id;
  (void)kSessionIdSlot;
}

ScopedSessionId::~ScopedSessionId() { t_session_id = previous_; }

std::string lease_name(pid_t owner, std::uint64_t session_id) {
  return "/cusan." + boot_id() + "." + std::to_string(static_cast<long>(owner)) + ".s" +
         std::to_string(session_id) + ".lease";
}

const std::string& boot_id() {
  static const std::string id = [] {
    std::string out = "00000000";
    FILE* f = std::fopen("/proc/sys/kernel/random/boot_id", "re");
    if (f != nullptr) {
      char buf[64] = {};
      const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      std::fclose(f);
      std::string hex;
      for (std::size_t i = 0; i < n && hex.size() < 8; ++i) {
        if (std::isxdigit(static_cast<unsigned char>(buf[i])) != 0) {
          hex.push_back(buf[i]);
        }
      }
      if (hex.size() == 8) {
        out = hex;
      }
    }
    return out;
  }();
  return id;
}

std::string segment_name(pid_t owner, const std::string& suffix) {
  std::string name =
      "/cusan." + boot_id() + "." + std::to_string(static_cast<long>(owner)) + ".";
  if (t_session_id > 0) {
    name += "s" + std::to_string(t_session_id) + ".";
  }
  return name + suffix;
}

Segment::Segment(Segment&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      name_(std::move(other.name_)) {
  other.name_.clear();
}

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = std::exchange(other.base_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    name_ = std::move(other.name_);
    other.name_.clear();
  }
  return *this;
}

Segment::~Segment() { reset(); }

void Segment::reset() {
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
    bytes_ = 0;
  }
}

void Segment::unlink() {
  if (!name_.empty()) {
    ::shm_unlink(name_.c_str());
  }
}

Segment Segment::create(const std::string& name, std::size_t bytes, std::string* error) {
  Segment seg;
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "shm_open(" + name + "): " + std::strerror(errno);
    }
    return seg;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    if (error != nullptr) {
      *error = "ftruncate(" + name + "): " + std::strerror(errno);
    }
    ::close(fd);
    ::shm_unlink(name.c_str());
    return seg;
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (error != nullptr) {
      *error = "mmap(" + name + "): " + std::strerror(errno);
    }
    ::shm_unlink(name.c_str());
    return seg;
  }
  seg.base_ = base;
  seg.bytes_ = bytes;
  seg.name_ = name;
  return seg;
}

Segment Segment::open(const std::string& name, std::string* error) {
  Segment seg;
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "shm_open(" + name + "): " + std::strerror(errno);
    }
    return seg;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    if (error != nullptr) {
      *error = "fstat(" + name + "): " + std::strerror(errno);
    }
    ::close(fd);
    return seg;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (error != nullptr) {
      *error = "mmap(" + name + "): " + std::strerror(errno);
    }
    return seg;
  }
  seg.base_ = base;
  seg.bytes_ = bytes;
  seg.name_ = name;
  return seg;
}

namespace {

/// Parse `cusan.<boot8>.<pid>[.s<sid>].<suffix>` (no leading '/'); false if
/// the name is not ours or malformed (malformed cusan.* names count as
/// stale: nothing we ship produces them, so they are junk from a crashed
/// writer). `*sid` is 0 for un-keyed (non-daemon) segments; `*is_lease` is
/// true for a session's `.lease` marker itself.
bool parse_name(const std::string& file, std::string* boot, long* pid, std::uint64_t* sid,
                bool* is_lease) {
  constexpr const char kPrefix[] = "cusan.";
  if (file.rfind(kPrefix, 0) != 0) {
    return false;
  }
  const std::size_t boot_start = sizeof(kPrefix) - 1;
  const std::size_t boot_end = file.find('.', boot_start);
  if (boot_end == std::string::npos || boot_end - boot_start != 8) {
    return false;
  }
  const std::size_t pid_end = file.find('.', boot_end + 1);
  if (pid_end == std::string::npos || pid_end == boot_end + 1) {
    return false;
  }
  char* end = nullptr;
  const std::string pid_str = file.substr(boot_end + 1, pid_end - boot_end - 1);
  const long parsed = std::strtol(pid_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0) {
    return false;
  }
  *boot = file.substr(boot_start, 8);
  *pid = parsed;
  *sid = 0;
  *is_lease = false;
  // Optional session key: `s<digits>.` right after the pid, with a non-empty
  // suffix behind it (a bare `s7` tail is a suffix named "s7", not a key).
  const std::size_t tail_start = pid_end + 1;
  if (tail_start < file.size() && file[tail_start] == 's') {
    const std::size_t sid_end = file.find('.', tail_start);
    if (sid_end != std::string::npos && sid_end > tail_start + 1) {
      const std::string sid_str = file.substr(tail_start + 1, sid_end - tail_start - 1);
      char* sid_parse_end = nullptr;
      const unsigned long long sid_parsed =
          std::strtoull(sid_str.c_str(), &sid_parse_end, 10);
      if (sid_parse_end != nullptr && *sid_parse_end == '\0' && sid_parsed > 0) {
        *sid = sid_parsed;
        *is_lease = file.substr(sid_end + 1) == "lease";
      }
    }
  }
  return true;
}

}  // namespace

GcStats gc_stale_segments(bool remove) {
  GcStats stats;
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) {
    return stats;
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    if (file.rfind("cusan.", 0) == 0) {
      names.push_back(file);
    }
  }
  ::closedir(dir);
  // First pass: live session leases. A session-keyed segment of a live
  // daemon pid is alive only while its (pid, sid) lease exists — a resident
  // daemon's finished sessions must not pin segments for the daemon's
  // lifetime.
  std::set<std::pair<long, std::uint64_t>> live_leases;
  for (const std::string& file : names) {
    std::string boot;
    long pid = 0;
    std::uint64_t sid = 0;
    bool is_lease = false;
    if (parse_name(file, &boot, &pid, &sid, &is_lease) && is_lease && boot == boot_id() &&
        (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH)) {
      live_leases.emplace(pid, sid);
    }
  }
  for (const std::string& file : names) {
    ++stats.scanned;
    std::string boot;
    long pid = 0;
    std::uint64_t sid = 0;
    bool is_lease = false;
    bool stale;
    if (!parse_name(file, &boot, &pid, &sid, &is_lease)) {
      stale = true;  // malformed cusan.* name: junk from a crashed writer
    } else if (boot != boot_id()) {
      stale = true;  // previous boot: the owner is definitionally gone
    } else if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      stale = true;  // dead owner. (EPERM means "exists but not ours" — alive.)
    } else if (sid > 0) {
      // Live owner, session-keyed: alive only while the session's lease is.
      stale = live_leases.find({pid, sid}) == live_leases.end();
    } else {
      stale = false;
    }
    if (!stale) {
      ++stats.alive;
      stats.alive_names.push_back(file);
      continue;
    }
    ++stats.stale;
    stats.stale_names.push_back(file);
    if (remove && ::shm_unlink(("/" + file).c_str()) == 0) {
      ++stats.removed;
    }
  }
  return stats;
}

}  // namespace mpisim::shm
