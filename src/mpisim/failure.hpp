// Structured rank-failure reporting for the proc backend: when a forked
// rank dies (signal, abnormal exit) or stops heartbeating, the supervisor
// classifies the death, poisons the world ULFM-style, and surfaces one
// RankFailureReport — failed rank, cause, signal name, the last MPI site
// the rank entered, and its in-flight requests at the time of death.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpisim {

enum class FailureKind : std::int32_t {
  kSignal = 0,            ///< reaped with WIFSIGNALED
  kHeartbeatTimeout = 1,  ///< stopped stamping heartbeats (hang); supervisor killed it
  kExitCode = 2,          ///< exited with a nonzero status that is not an app error
};

[[nodiscard]] const char* to_string(FailureKind kind);

/// Human name for a terminating signal ("SIGKILL", …; "SIG<n>" fallback).
[[nodiscard]] std::string signal_name(int sig);

/// One in-flight request of the failed rank (kind + envelope).
struct InflightOp {
  bool is_send{false};
  int peer{-1};
  int tag{-1};
};

struct RankFailureReport {
  int rank{-1};
  FailureKind kind{FailureKind::kSignal};
  int signal{0};     ///< terminating signal (kind kSignal / kHeartbeatTimeout's SIGKILL)
  int exit_code{0};  ///< exit status (kind kExitCode)
  std::uint64_t last_heartbeat_ns{0};
  std::uint64_t detected_ns{0};
  std::string site;  ///< last MPI operation the rank entered ("" = never entered MPI)
  std::vector<InflightOp> inflight;
  std::size_t inflight_total{0};  ///< may exceed inflight.size() (bounded table)

  /// One-line summary, e.g.
  /// "rank 3 killed by SIGKILL in MPI_Allreduce (2 in-flight: send->0#7, recv<-1#*)".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace mpisim
