// MPI datatypes for the simulator: builtin scalars plus derived contiguous
// and (strided) vector types. A datatype knows its extent, its packed size
// and its flattened scalar layout (the "type signature" MPI matching is
// defined over, and the layout MUST compares against TypeART allocations).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mpisim {

/// Primitive scalar kinds appearing in type signatures.
enum class Scalar : std::uint8_t {
  kByte,
  kChar,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat,
  kDouble,
};

[[nodiscard]] constexpr std::size_t scalar_size(Scalar s) {
  switch (s) {
    case Scalar::kByte:
    case Scalar::kChar:
      return 1;
    case Scalar::kInt32:
    case Scalar::kUInt32:
    case Scalar::kFloat:
      return 4;
    case Scalar::kInt64:
    case Scalar::kUInt64:
    case Scalar::kDouble:
      return 8;
  }
  return 0;
}

[[nodiscard]] constexpr const char* to_string(Scalar s) {
  switch (s) {
    case Scalar::kByte:
      return "MPI_BYTE";
    case Scalar::kChar:
      return "MPI_CHAR";
    case Scalar::kInt32:
      return "MPI_INT";
    case Scalar::kUInt32:
      return "MPI_UNSIGNED";
    case Scalar::kInt64:
      return "MPI_LONG_LONG";
    case Scalar::kUInt64:
      return "MPI_UNSIGNED_LONG_LONG";
    case Scalar::kFloat:
      return "MPI_FLOAT";
    case Scalar::kDouble:
      return "MPI_DOUBLE";
  }
  return "?";
}

/// One scalar at a byte offset within a datatype's extent.
struct LayoutEntry {
  std::size_t offset{};
  Scalar scalar{Scalar::kByte};
};

class Datatype {
 public:
  Datatype() = default;  ///< null datatype (invalid for communication)

  // Builtins.
  [[nodiscard]] static Datatype byte();
  [[nodiscard]] static Datatype char_();
  [[nodiscard]] static Datatype int32();
  [[nodiscard]] static Datatype uint32();
  [[nodiscard]] static Datatype int64();
  [[nodiscard]] static Datatype uint64();
  [[nodiscard]] static Datatype float32();
  [[nodiscard]] static Datatype float64();

  /// `count` consecutive elements of `base` (MPI_Type_contiguous).
  [[nodiscard]] static Datatype contiguous(const Datatype& base, std::size_t count);

  /// `count` blocks of `blocklength` base elements, block starts separated
  /// by `stride` base elements (MPI_Type_vector). stride >= blocklength.
  [[nodiscard]] static Datatype vector(const Datatype& base, std::size_t count,
                                       std::size_t blocklength, std::size_t stride);

  /// MPI_Type_indexed: block i has `blocklengths[i]` base elements starting
  /// at base-element displacement `displacements[i]`. The arrays must have
  /// equal, non-zero length; blocks must not overlap and displacements must
  /// be increasing.
  [[nodiscard]] static Datatype indexed(const Datatype& base,
                                        std::span<const std::size_t> blocklengths,
                                        std::span<const std::size_t> displacements);

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  [[nodiscard]] const std::string& name() const;
  /// Span of one element in memory, including holes (MPI extent).
  [[nodiscard]] std::size_t extent() const;
  /// Bytes of actual data in one element (sum of scalar sizes).
  [[nodiscard]] std::size_t packed_size() const;
  /// True if the layout has no holes (packed_size == extent, offsets dense).
  [[nodiscard]] bool is_contiguous() const;
  [[nodiscard]] const std::vector<LayoutEntry>& layout() const;

  /// Append the scalar signature of `count` elements to `out`.
  void signature(std::size_t count, std::vector<Scalar>& out) const;

  /// Pack `count` elements from `src` into `dst` (dst must hold
  /// packed_size()*count bytes).
  void pack(const void* src, std::size_t count, void* dst) const;
  /// Unpack `count` elements from packed `src` into `dst`.
  void unpack(const void* src, std::size_t count, void* dst) const;

  friend bool operator==(const Datatype& a, const Datatype& b) { return a.impl_ == b.impl_; }

 private:
  struct Impl {
    std::string name;
    std::size_t extent{};
    std::size_t packed{};
    std::vector<LayoutEntry> layout;
  };

  explicit Datatype(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
  [[nodiscard]] static Datatype make_builtin(const char* name, Scalar scalar);

  std::shared_ptr<const Impl> impl_;
};

/// Reduction operations (MPI_Op subset).
enum class ReduceOp : std::uint8_t { kSum, kMin, kMax, kProd };

/// Apply `op` elementwise: inout[i] = op(inout[i], in[i]). Only valid for
/// builtin arithmetic datatypes; returns false for unsupported types.
bool apply_reduce(ReduceOp op, const Datatype& type, std::size_t count, const void* in,
                  void* inout);

}  // namespace mpisim
