// The backend interface behind Comm. Everything above this line — argument
// validation, fault-plan consultation, OpScope labelling and all the tree
// collectives — lives in Comm and is backend-agnostic; a backend only
// implements the point-to-point surface below with MPI matching semantics
// (source/tag matching incl. wildcards, FIFO per channel, eager buffered
// sends, posted-receive + unexpected-message queues).
//
// Two backends exist:
//   * ThreadCommImpl (comm.cpp)      — ranks as threads, sharded in-process
//     mailboxes with targeted wakeups. The default.
//   * ProcCommImpl   (proc_comm.cpp) — ranks as forked processes, mailboxes
//     fed by shared-memory rings, supervised failure detection.
#pragma once

#include <atomic>
#include <memory>
#include <span>

#include "mpisim/comm.hpp"
#include "mpisim/request.hpp"

namespace mpisim {

class CommImpl {
 public:
  CommImpl(const CommImpl&) = delete;
  CommImpl& operator=(const CommImpl&) = delete;
  virtual ~CommImpl() = default;

  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual int comm_id() const = 0;

  /// True once the progress watchdog declared a deadlock on this world.
  [[nodiscard]] virtual bool deadlocked() const = 0;
  [[nodiscard]] virtual DeadlockReport deadlock_report() const = 0;

  /// One-line summary of the rank failure that poisoned this world ("" when
  /// none). Only the proc backend can observe one.
  [[nodiscard]] virtual std::string failure_summary() const { return {}; }

  /// The rank's k-th dup call maps to child context k (MPI's same-order
  /// collective-call requirement makes the indices agree across ranks).
  [[nodiscard]] virtual std::shared_ptr<CommImpl> dup_for_rank(int rank) = 0;

  virtual MpiError post_send(int src, int dest, int tag, const void* buf, std::size_t count,
                             const Datatype& type) = 0;
  virtual MpiError post_recv(int dest, int source, int tag, void* buf, std::size_t count,
                             const Datatype& type, Request* request) = 0;
  virtual MpiError wait(int rank, Request** request, Status* status) = 0;
  virtual MpiError test(int rank, Request** request, bool* completed, Status* status) = 0;
  virtual MpiError waitany(int rank, std::span<Request*> requests, int* index,
                           Status* status) = 0;
  virtual MpiError probe(int rank, int source, int tag, bool blocking, bool* flag,
                         Status* status) = 0;
  /// Eager sends complete on the posting rank itself: the owner cannot be
  /// waiting on the request yet, so no wakeup is needed.
  virtual void complete_send_request(Request* req, std::size_t bytes) = 0;
  /// An injected `stall` fault: park the calling rank as if the operation
  /// never completed, until the watchdog declares a deadlock.
  virtual MpiError stall(int rank, const char* op_name, int peer, int tag,
                         std::uint64_t fault_id) = 0;

  /// Requests are constructed through the base so the Request friendship
  /// stays with this one class.
  [[nodiscard]] Request* make_request(Request::Kind kind, const void* buf, std::size_t count,
                                      const Datatype& type, int peer, int tag) {
    return new Request(kind, buf, count, type, peer, tag);
  }

 protected:
  CommImpl() = default;

  // Derived backends complete requests and read their envelopes through
  // these helpers (same reason as make_request).
  static void publish_status(Request* req, const Status& st) {
    req->status_ = st;
    req->complete_.store(true, std::memory_order_release);
  }
  [[nodiscard]] static const Status& request_status(const Request* req) { return req->status_; }
  [[nodiscard]] static bool request_complete(const Request* req) { return req->complete(); }
  [[nodiscard]] static int request_peer(const Request* req) { return req->peer_; }
  [[nodiscard]] static int request_tag(const Request* req) { return req->tag_; }
};

}  // namespace mpisim
