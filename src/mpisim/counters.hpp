// Process-global contention counters for the sharded communication engine.
// They quantify exactly the costs the sharding work targets: how often a
// mailbox lock is taken, how many wakeups are delivered point-to-point vs
// broadcast, and how many of them were spurious (the woken rank's predicate
// was still false). bench_scaling_ranks prints them next to throughput so a
// wakeup regression (e.g. an accidental notify_all on the hot path) is
// visible as a number, not just as a slowdown.
//
// Counters are relaxed atomics: they impose no ordering and cost one
// uncontended RMW per event, which is noise next to the mutex operation they
// sit beside. Snapshot/reset are racy-by-design (monitoring, not invariants).
#pragma once

#include <atomic>
#include <cstdint>

namespace mpisim {

struct ContentionSnapshot {
  std::uint64_t mailbox_locks{};       ///< mailbox (channel) lock acquisitions
  std::uint64_t wakeups_delivered{};   ///< targeted per-rank slot signals
  std::uint64_t wakeups_broadcast{};   ///< ranks woken by broadcasts (deadlock declaration)
  std::uint64_t wakeups_spurious{};    ///< signalled wakes that found the predicate still false
  std::uint64_t any_source_scans{};    ///< MPI_ANY_SOURCE slow-path scans over all src channels
  std::uint64_t collective_messages{}; ///< internal p2p messages sent by collective trees
};

namespace detail {
inline std::atomic<std::uint64_t> g_mailbox_locks{0};
inline std::atomic<std::uint64_t> g_wakeups_delivered{0};
inline std::atomic<std::uint64_t> g_wakeups_broadcast{0};
inline std::atomic<std::uint64_t> g_wakeups_spurious{0};
inline std::atomic<std::uint64_t> g_any_source_scans{0};
inline std::atomic<std::uint64_t> g_collective_messages{0};

inline void bump(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace detail

[[nodiscard]] inline ContentionSnapshot contention_snapshot() {
  ContentionSnapshot s;
  s.mailbox_locks = detail::g_mailbox_locks.load(std::memory_order_relaxed);
  s.wakeups_delivered = detail::g_wakeups_delivered.load(std::memory_order_relaxed);
  s.wakeups_broadcast = detail::g_wakeups_broadcast.load(std::memory_order_relaxed);
  s.wakeups_spurious = detail::g_wakeups_spurious.load(std::memory_order_relaxed);
  s.any_source_scans = detail::g_any_source_scans.load(std::memory_order_relaxed);
  s.collective_messages = detail::g_collective_messages.load(std::memory_order_relaxed);
  return s;
}

inline void reset_contention_counters() {
  detail::g_mailbox_locks.store(0, std::memory_order_relaxed);
  detail::g_wakeups_delivered.store(0, std::memory_order_relaxed);
  detail::g_wakeups_broadcast.store(0, std::memory_order_relaxed);
  detail::g_wakeups_spurious.store(0, std::memory_order_relaxed);
  detail::g_any_source_scans.store(0, std::memory_order_relaxed);
  detail::g_collective_messages.store(0, std::memory_order_relaxed);
}

/// Difference of two snapshots (end - begin), for bracketing one benchmark.
[[nodiscard]] inline ContentionSnapshot contention_delta(const ContentionSnapshot& begin,
                                                         const ContentionSnapshot& end) {
  ContentionSnapshot d;
  d.mailbox_locks = end.mailbox_locks - begin.mailbox_locks;
  d.wakeups_delivered = end.wakeups_delivered - begin.wakeups_delivered;
  d.wakeups_broadcast = end.wakeups_broadcast - begin.wakeups_broadcast;
  d.wakeups_spurious = end.wakeups_spurious - begin.wakeups_spurious;
  d.any_source_scans = end.any_source_scans - begin.any_source_scans;
  d.collective_messages = end.collective_messages - begin.collective_messages;
  return d;
}

}  // namespace mpisim
