// Process-global contention counters for the sharded communication engine,
// now backed by the central obs metrics registry (names "mpisim.*") so the
// same numbers show up in CUSAN_METRICS dumps, check_cutests --json and
// bench_scaling_ranks. They quantify exactly the costs the sharding work
// targets: how often a mailbox lock is taken, how many wakeups are delivered
// point-to-point vs broadcast, and how many of them were spurious (the woken
// rank's predicate was still false).
//
// The hot-path discipline is unchanged: each bump is one relaxed RMW on a
// cached obs::Counter handle (stable address — resolved once per registry
// per thread, never a map lookup per event), which is noise next to the
// mutex operation it sits beside. The cache re-resolves when the calling
// thread's current registry changes (svc session scoping), so concurrent
// sessions never bleed counts into each other. Snapshot/reset are
// racy-by-design (monitoring, not invariants).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace mpisim {

struct ContentionSnapshot {
  std::uint64_t mailbox_locks{};       ///< mailbox (channel) lock acquisitions
  std::uint64_t wakeups_delivered{};   ///< targeted per-rank slot signals
  std::uint64_t wakeups_broadcast{};   ///< ranks woken by broadcasts (deadlock declaration)
  std::uint64_t wakeups_spurious{};    ///< signalled wakes that found the predicate still false
  std::uint64_t any_source_scans{};    ///< MPI_ANY_SOURCE slow-path scans over all src channels
  std::uint64_t collective_messages{}; ///< internal p2p messages sent by collective trees
};

namespace detail {

/// Registry handles, cached per thread and re-resolved whenever the calling
/// thread's current registry changes (session scoping).
struct ContentionCounters {
  obs::MetricsRegistry* owner{nullptr};
  obs::Counter* mailbox_locks{nullptr};
  obs::Counter* wakeups_delivered{nullptr};
  obs::Counter* wakeups_broadcast{nullptr};
  obs::Counter* wakeups_spurious{nullptr};
  obs::Counter* any_source_scans{nullptr};
  obs::Counter* collective_messages{nullptr};
};

[[nodiscard]] inline ContentionCounters& contention_counters() {
  thread_local ContentionCounters counters;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  if (counters.owner != &registry) {
    counters.owner = &registry;
    counters.mailbox_locks = &registry.counter("mpisim.mailbox_locks");
    counters.wakeups_delivered = &registry.counter("mpisim.wakeups_delivered");
    counters.wakeups_broadcast = &registry.counter("mpisim.wakeups_broadcast");
    counters.wakeups_spurious = &registry.counter("mpisim.wakeups_spurious");
    counters.any_source_scans = &registry.counter("mpisim.any_source_scans");
    counters.collective_messages = &registry.counter("mpisim.collective_messages");
  }
  return counters;
}

inline void bump(obs::Counter& counter, std::uint64_t n = 1) { counter.add(n); }

}  // namespace detail

[[nodiscard]] inline ContentionSnapshot contention_snapshot() {
  const auto& c = detail::contention_counters();
  ContentionSnapshot s;
  s.mailbox_locks = c.mailbox_locks->value();
  s.wakeups_delivered = c.wakeups_delivered->value();
  s.wakeups_broadcast = c.wakeups_broadcast->value();
  s.wakeups_spurious = c.wakeups_spurious->value();
  s.any_source_scans = c.any_source_scans->value();
  s.collective_messages = c.collective_messages->value();
  return s;
}

inline void reset_contention_counters() {
  const auto& c = detail::contention_counters();
  c.mailbox_locks->set(0);
  c.wakeups_delivered->set(0);
  c.wakeups_broadcast->set(0);
  c.wakeups_spurious->set(0);
  c.any_source_scans->set(0);
  c.collective_messages->set(0);
}

/// Difference of two snapshots (end - begin), for bracketing one benchmark.
[[nodiscard]] inline ContentionSnapshot contention_delta(const ContentionSnapshot& begin,
                                                         const ContentionSnapshot& end) {
  ContentionSnapshot d;
  d.mailbox_locks = end.mailbox_locks - begin.mailbox_locks;
  d.wakeups_delivered = end.wakeups_delivered - begin.wakeups_delivered;
  d.wakeups_broadcast = end.wakeups_broadcast - begin.wakeups_broadcast;
  d.wakeups_spurious = end.wakeups_spurious - begin.wakeups_spurious;
  d.any_source_scans = end.any_source_scans - begin.any_source_scans;
  d.collective_messages = end.collective_messages - begin.collective_messages;
  return d;
}

}  // namespace mpisim
