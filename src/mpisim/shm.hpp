// POSIX shared-memory segments for the proc backend, named so that stale
// ones are safely reapable: every name embeds the owning supervisor's pid
// and the kernel boot id — `/cusan.<boot8>.<pid>.<suffix>` — so a segment
// is provably stale exactly when its boot id differs from the running
// kernel's or its owner pid no longer exists. tools/shm_gc and the test
// harnesses reap on that rule.
//
// Daemon extension (svc): a long-lived checker daemon's pid stays alive for
// days, so pid liveness alone would keep finished sessions' segments
// forever. While a ScopedSessionId is active, names gain a session key —
// `/cusan.<boot8>.<pid>.s<sid>.<suffix>` — and the session holds a tiny
// `.s<sid>.lease` segment for its lifetime. gc treats a same-boot live-pid
// segment with a session key as stale exactly when its lease is gone:
// live-daemon sessions are skipped (`shm_gc --check` stays quiet), ended or
// crashed sessions' leftovers are reapable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace mpisim::shm {

/// First 8 hex chars of /proc/sys/kernel/random/boot_id ("00000000" if the
/// file is unreadable — gc then falls back to the pid liveness test alone).
[[nodiscard]] const std::string& boot_id();

/// `/cusan.<boot8>.<pid>.<suffix>` (the leading '/' is part of the POSIX
/// name; the /dev/shm file is the same without it). While a ScopedSessionId
/// is active on the calling thread the name becomes
/// `/cusan.<boot8>.<pid>.s<sid>.<suffix>`.
[[nodiscard]] std::string segment_name(pid_t owner, const std::string& suffix);

/// The calling thread's session key (0: none). Propagated to spawned
/// workers via common::ThreadContext, and into forked rank processes by
/// fork itself.
[[nodiscard]] std::uint64_t current_session_id();

/// Key every segment_name() on this thread by session `id` (> 0) for the
/// scope's lifetime. svc::Session wraps each session body in one.
class ScopedSessionId {
 public:
  explicit ScopedSessionId(std::uint64_t id);
  ~ScopedSessionId();
  ScopedSessionId(const ScopedSessionId&) = delete;
  ScopedSessionId& operator=(const ScopedSessionId&) = delete;

 private:
  std::uint64_t previous_;
};

/// `/cusan.<boot8>.<pid>.s<sid>.lease` — held by a svc session while it
/// runs; its existence is what marks the session's segments as live to gc.
[[nodiscard]] std::string lease_name(pid_t owner, std::uint64_t session_id);

/// RAII mapping of a named POSIX shared-memory segment. Movable; the
/// destructor unmaps but never unlinks — name lifetime is the owner's call.
class Segment {
 public:
  Segment() = default;
  Segment(Segment&& other) noexcept;
  Segment& operator=(Segment&& other) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment();

  /// Create (O_EXCL) and map a fresh zero-filled segment of `bytes`.
  [[nodiscard]] static Segment create(const std::string& name, std::size_t bytes,
                                      std::string* error);
  /// Map an existing segment at its current size.
  [[nodiscard]] static Segment open(const std::string& name, std::string* error);

  [[nodiscard]] bool valid() const { return base_ != nullptr; }
  [[nodiscard]] void* data() const { return base_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Remove the name (mappings stay valid until unmapped). Idempotent.
  void unlink();
  /// Unmap now (destructor becomes a no-op).
  void reset();

 private:
  void* base_{nullptr};
  std::size_t bytes_{0};
  std::string name_;
};

struct GcStats {
  int scanned{0};   ///< cusan.* names seen in /dev/shm
  int stale{0};     ///< provably orphaned (dead owner pid or other boot)
  int removed{0};   ///< stale names actually unlinked
  int alive{0};     ///< owner still running — left alone
  std::vector<std::string> stale_names;
  std::vector<std::string> alive_names;
};

/// Scan /dev/shm for `cusan.*` segments and classify them; with
/// `remove` also unlink the stale ones. Never touches live owners'
/// segments or non-cusan names.
[[nodiscard]] GcStats gc_stale_segments(bool remove);

}  // namespace mpisim::shm
