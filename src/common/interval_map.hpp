// An interval map over address ranges. Used by typeart's allocation table
// and rsan's internal bookkeeping: maps [base, base+extent) -> payload and
// answers "which allocation contains this pointer?" queries.
//
// Intervals never overlap; inserting an overlapping interval is an error the
// caller must handle (it indicates a double-registration bug).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/assert.hpp"

namespace common {

template <typename Payload>
class IntervalMap {
 public:
  struct Entry {
    std::uintptr_t base{};
    std::size_t extent{};
    Payload payload{};
  };

  /// Insert [base, base+extent). Returns false (and leaves the map unchanged)
  /// if the new interval overlaps an existing one or extent is zero.
  bool insert(std::uintptr_t base, std::size_t extent, Payload payload) {
    if (extent == 0) {
      return false;
    }
    auto next = map_.lower_bound(base);
    if (next != map_.end() && next->first < base + extent) {
      return false;  // overlaps the following interval
    }
    if (next != map_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second.extent > base) {
        return false;  // overlaps the preceding interval
      }
    }
    map_.emplace_hint(next, base, Node{extent, std::move(payload)});
    return true;
  }

  /// Remove the interval starting exactly at `base`. Returns the payload if
  /// such an interval existed.
  std::optional<Payload> erase(std::uintptr_t base) {
    auto it = map_.find(base);
    if (it == map_.end()) {
      return std::nullopt;
    }
    Payload payload = std::move(it->second.payload);
    map_.erase(it);
    return payload;
  }

  /// Find the interval containing `addr` (base <= addr < base+extent).
  [[nodiscard]] std::optional<Entry> find(std::uintptr_t addr) const {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) {
      return std::nullopt;
    }
    --it;
    if (addr >= it->first + it->second.extent) {
      return std::nullopt;
    }
    return Entry{it->first, it->second.extent, it->second.payload};
  }

  /// Find the interval whose base is exactly `base`.
  [[nodiscard]] std::optional<Entry> find_exact(std::uintptr_t base) const {
    auto it = map_.find(base);
    if (it == map_.end()) {
      return std::nullopt;
    }
    return Entry{it->first, it->second.extent, it->second.payload};
  }

  /// True if [base, base+extent) overlaps any stored interval.
  [[nodiscard]] bool overlaps(std::uintptr_t base, std::size_t extent) const {
    if (extent == 0) {
      return false;
    }
    auto next = map_.lower_bound(base);
    if (next != map_.end() && next->first < base + extent) {
      return true;
    }
    if (next != map_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second.extent > base) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  /// Visit all entries in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [base, node] : map_) {
      fn(Entry{base, node.extent, node.payload});
    }
  }

 private:
  struct Node {
    std::size_t extent{};
    Payload payload{};
  };
  std::map<std::uintptr_t, Node> map_;
};

}  // namespace common
