#include "common/thread_context.hpp"

#include "common/assert.hpp"

namespace common {

namespace {

struct Slot {
  ThreadContext::CaptureFn capture{nullptr};
  ThreadContext::RestoreFn restore{nullptr};
};

// Written only during static initialization (register_slot contract), read
// afterwards without synchronization.
std::array<Slot, ThreadContext::kMaxSlots> g_slots;
std::size_t g_slot_count = 0;

}  // namespace

std::size_t ThreadContext::register_slot(CaptureFn capture, RestoreFn restore) {
  CUSAN_ASSERT_MSG(g_slot_count < kMaxSlots, "ThreadContext slot table full");
  g_slots[g_slot_count] = Slot{capture, restore};
  return g_slot_count++;
}

ThreadContext ThreadContext::capture() {
  ThreadContext out;
  for (std::size_t i = 0; i < g_slot_count; ++i) {
    out.values_[i] = g_slots[i].capture();
  }
  return out;
}

ThreadContext::Scope::Scope(const ThreadContext& context) {
  for (std::size_t i = 0; i < g_slot_count; ++i) {
    saved_[i] = g_slots[i].capture();
    g_slots[i].restore(context.values_[i]);
  }
}

ThreadContext::Scope::~Scope() {
  for (std::size_t i = 0; i < g_slot_count; ++i) {
    g_slots[i].restore(saved_[i]);
  }
}

}  // namespace common
