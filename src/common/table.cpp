#include "common/table.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace common {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  CUSAN_ASSERT_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render(int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += pad;
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  out += pad;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

std::string format_double(double value, int precision) { return fixed(value, precision); }

std::string format_bytes(std::size_t bytes) {
  constexpr std::size_t kKiB = 1024;
  constexpr std::size_t kMiB = kKiB * 1024;
  constexpr std::size_t kGiB = kMiB * 1024;
  if (bytes >= kGiB) {
    return fixed(static_cast<double>(bytes) / static_cast<double>(kGiB)) + " GiB";
  }
  if (bytes >= kMiB) {
    return fixed(static_cast<double>(bytes) / static_cast<double>(kMiB)) + " MiB";
  }
  if (bytes >= kKiB) {
    return fixed(static_cast<double>(bytes) / static_cast<double>(kKiB)) + " KiB";
  }
  return format("{} B", bytes);
}

}  // namespace common
