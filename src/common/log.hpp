// Minimal leveled logger. Thread-safe; every line is written with a single
// fwrite so concurrent ranks do not interleave mid-line.
#pragma once

#include <string_view>

#include "common/format.hpp"

namespace common {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one formatted line (level tag + message + newline) to stderr.
void log_line(LogLevel level, std::string_view message);

template <typename... Args>
void logf(LogLevel level, std::string_view fmt, const Args&... args) {
  if (level < log_level()) {
    return;
  }
  log_line(level, format(fmt, args...));
}

}  // namespace common

#define CUSAN_LOG_DEBUG(...) ::common::logf(::common::LogLevel::kDebug, __VA_ARGS__)
#define CUSAN_LOG_INFO(...) ::common::logf(::common::LogLevel::kInfo, __VA_ARGS__)
#define CUSAN_LOG_WARN(...) ::common::logf(::common::LogLevel::kWarn, __VA_ARGS__)
#define CUSAN_LOG_ERROR(...) ::common::logf(::common::LogLevel::kError, __VA_ARGS__)
