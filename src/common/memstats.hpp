// Process memory statistics (resident set size), used by the Fig. 11
// memory-overhead benchmark exactly as the paper queries RSS at
// MPI_Finalize time.
#pragma once

#include <cstddef>

namespace common {

struct MemStats {
  std::size_t rss_bytes{};       ///< current resident set size (VmRSS)
  std::size_t rss_peak_bytes{};  ///< peak resident set size (VmHWM)
};

/// Read the current process memory stats from /proc/self/status.
/// Returns zeros if the file is unavailable (non-Linux platforms).
[[nodiscard]] MemStats read_memstats();

}  // namespace common
