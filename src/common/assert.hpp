// Internal invariant checking. CUSAN_ASSERT is active in all build types:
// a correctness tool that silently corrupts its own bookkeeping is worse
// than one that aborts loudly.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace common {

[[noreturn]] inline void assert_fail(const char* cond, const char* file, int line, const char* msg) {
  std::fprintf(stderr, "[cusan-repro] assertion failed: %s (%s:%d)%s%s\n", cond, file, line,
               msg != nullptr ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace common

#define CUSAN_ASSERT(cond)                                               \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::common::assert_fail(#cond, __FILE__, __LINE__, nullptr);         \
  } while (false)

#define CUSAN_ASSERT_MSG(cond, msg)                                      \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::common::assert_fail(#cond, __FILE__, __LINE__, (msg));           \
  } while (false)
