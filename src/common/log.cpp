#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace common {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void log_line(LogLevel level, std::string_view message) {
  std::string line;
  line.reserve(message.size() + 16);
  line += "[";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace common
