// Session-context propagation across thread boundaries. Subsystems that
// route a formerly process-global singleton through a thread_local "current
// instance" pointer (obs::MetricsRegistry, obs diagnostics hub, the faultsim
// Injector, the schedsim Controller, the shm session id) register a slot
// here; thread-spawn sites (cusim stream workers, mpisim rank threads, the
// svc executor) capture the parent thread's slots with capture() and install
// them in the spawned thread with a Scope. A thread with no installed
// context sees every slot as null and each subsystem falls back to its
// process-global instance — exactly today's behavior, so code outside the
// service path is unaffected.
//
// Registration happens from namespace-scope initializers in each subsystem's
// .cpp, i.e. during static initialization, strictly before main() spawns any
// thread; capture()/Scope never take a lock.
#pragma once

#include <array>
#include <cstddef>

namespace common {

class ThreadContext {
 public:
  /// Reads the calling thread's TLS value for the slot.
  using CaptureFn = void* (*)();
  /// Installs `value` into the calling thread's TLS for the slot.
  using RestoreFn = void (*)(void* value);

  static constexpr std::size_t kMaxSlots = 16;

  /// Register a TLS slot; returns its index. Call only from static
  /// initializers (namespace-scope), never after threads exist.
  static std::size_t register_slot(CaptureFn capture, RestoreFn restore);

  /// Snapshot every registered slot of the calling thread.
  [[nodiscard]] static ThreadContext capture();

  /// Install `context` in the current thread for the Scope's lifetime; the
  /// previous values are restored on destruction.
  class Scope {
   public:
    explicit Scope(const ThreadContext& context);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::array<void*, kMaxSlots> saved_{};
  };

 private:
  std::array<void*, kMaxSlots> values_{};
};

}  // namespace common
