// The one monotonic clock for the whole stack: obs spans, the mpisim
// watchdog, WallTimer and cusim's launch-overhead model all read time through
// now_ns() so timestamps from different subsystems are directly comparable.
#pragma once

#include <chrono>
#include <cstdint>

namespace common {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace common
