#include "common/memstats.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace common {

MemStats read_memstats() {
  MemStats stats{};
  // Cached fd + pread(0): /proc regenerates content on every read, so one
  // open serves all later calls — metrics snapshots happen twice per checked
  // session, and a fopen/fgets/sscanf walk of all ~50 status lines showed up
  // in executor profiles. Thread-local so concurrent sessions don't race on
  // the fd; the pid check reopens after fork ("/proc/self" binds to the pid
  // at open time, so an inherited fd would report the parent's numbers).
  thread_local int fd = -1;
  thread_local pid_t fd_pid = -1;
  const pid_t pid = ::getpid();
  if (fd < 0 || fd_pid != pid) {
    if (fd >= 0) {
      ::close(fd);
    }
    fd = ::open("/proc/self/status", O_RDONLY | O_CLOEXEC);
    fd_pid = pid;
    if (fd < 0) {
      return stats;
    }
  }
  char buf[8192];
  const ssize_t n = ::pread(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) {
    return stats;
  }
  buf[n] = '\0';
  const auto field_kb = [&buf](const char* key) -> std::size_t {
    const char* p = std::strstr(buf, key);
    if (p == nullptr) {
      return 0;
    }
    return static_cast<std::size_t>(std::strtoull(p + std::strlen(key), nullptr, 10)) * 1024;
  };
  stats.rss_bytes = field_kb("VmRSS:");
  stats.rss_peak_bytes = field_kb("VmHWM:");
  return stats;
}

}  // namespace common
