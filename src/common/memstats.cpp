#include "common/memstats.hpp"

#include <cstdio>
#include <cstring>

namespace common {

MemStats read_memstats() {
  MemStats stats{};
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return stats;
  }
  char line[256];
  while (std::fgets(line, sizeof line, file) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      stats.rss_bytes = static_cast<std::size_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      stats.rss_peak_bytes = static_cast<std::size_t>(kb) * 1024;
    }
  }
  std::fclose(file);
  return stats;
}

}  // namespace common
