// Simple wall-clock timer for benchmark harnesses.
#pragma once

#include <chrono>

namespace common {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace common
