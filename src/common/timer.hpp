// Simple wall-clock timer for benchmark harnesses, built on the shared
// monotonic clock (common::now_ns).
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace common {

class WallTimer {
 public:
  WallTimer() : start_ns_(now_ns()) {}

  void reset() { start_ns_ = now_ns(); }

  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  std::uint64_t start_ns_;
};

}  // namespace common
