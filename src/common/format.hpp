// Minimal "{}"-placeholder string formatting, standing in for std::format
// (not available in GCC 12's libstdc++). Supports sequential `{}`
// placeholders only; numeric presentation (precision, hex) goes through the
// explicit helpers below. Not used on hot paths.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace common {

namespace detail {

inline void append_value(std::string& out, std::string_view v) { out += v; }
inline void append_value(std::string& out, const std::string& v) { out += v; }
inline void append_value(std::string& out, const char* v) { out += (v != nullptr ? v : "<null>"); }
inline void append_value(std::string& out, bool v) { out += v ? "true" : "false"; }
inline void append_value(std::string& out, char v) { out += v; }

template <typename T>
  requires std::is_integral_v<T>
void append_value(std::string& out, T v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, ptr);
}

inline void append_value(std::string& out, double v) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%g", v);
  out.append(buf, buf + (n > 0 ? n : 0));
}

inline void append_value(std::string& out, float v) { append_value(out, static_cast<double>(v)); }

inline void append_value(std::string& out, const void* v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%p", v);
  out.append(buf, buf + (n > 0 ? n : 0));
}

}  // namespace detail

/// Replace successive "{}" placeholders in `fmt` with the rendered args.
/// Extra placeholders are kept literally; extra args are ignored.
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::string rendered[sizeof...(Args) > 0 ? sizeof...(Args) : 1];
  std::size_t count = 0;
  ((detail::append_value(rendered[count++], args)), ...);

  std::string out;
  out.reserve(fmt.size() + 16 * count);
  std::size_t arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '}' && arg < count) {
      out += rendered[arg++];
      ++i;
    } else {
      out += fmt[i];
    }
  }
  return out;
}

/// Render a pointer-sized value as 0x-prefixed hex.
[[nodiscard]] inline std::string hex(std::uintptr_t value) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "0x%zx", static_cast<std::size_t>(value));
  return std::string(buf, buf + (n > 0 ? n : 0));
}

/// Fixed-precision double rendering ("%.{precision}f").
[[nodiscard]] inline std::string fixed(double value, int precision = 2) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return std::string(buf, buf + (n > 0 ? n : 0));
}

}  // namespace common
