// Deterministic splitmix64-based RNG for workload generation. Benchmarks and
// tests must be reproducible run-to-run, so we never seed from the clock.
#pragma once

#include <cstdint>

namespace common {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace common
