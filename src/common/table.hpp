// Plain-text table printer used by the benchmark harnesses to emit the
// paper's tables/figure series in aligned, grep-friendly form.
#pragma once

#include <string>
#include <vector>

namespace common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment, a header underline, and `indent` leading
  /// spaces on every line.
  [[nodiscard]] std::string render(int indent = 0) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for benchmark output.
[[nodiscard]] std::string format_double(double value, int precision = 2);
[[nodiscard]] std::string format_bytes(std::size_t bytes);

}  // namespace common
