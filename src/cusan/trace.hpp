// Optional interception trace: records every CUDA event CuSan observes, in
// order, for diagnosing race reports ("what did the tool see before the
// conflict?"). Exportable as JSON lines for external tooling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace cusan {

enum class TraceKind : std::uint8_t {
  kStreamCreate,
  kStreamDestroy,
  kKernelLaunch,
  kStreamSync,
  kDeviceSync,
  kEventCreate,
  kEventDestroy,
  kEventRecord,
  kEventSync,
  kStreamWaitEvent,
  kQuerySuccess,
  kMemcpy,
  kMemset,
  kPrefetch,
  kHostFunc,
  kFree,
  kProofElided,  ///< kernel launch whose tracking was elided by an affine proof
};

[[nodiscard]] constexpr const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kStreamCreate:
      return "stream_create";
    case TraceKind::kStreamDestroy:
      return "stream_destroy";
    case TraceKind::kKernelLaunch:
      return "kernel_launch";
    case TraceKind::kStreamSync:
      return "stream_synchronize";
    case TraceKind::kDeviceSync:
      return "device_synchronize";
    case TraceKind::kEventCreate:
      return "event_create";
    case TraceKind::kEventDestroy:
      return "event_destroy";
    case TraceKind::kEventRecord:
      return "event_record";
    case TraceKind::kEventSync:
      return "event_synchronize";
    case TraceKind::kStreamWaitEvent:
      return "stream_wait_event";
    case TraceKind::kQuerySuccess:
      return "query_success";
    case TraceKind::kMemcpy:
      return "memcpy";
    case TraceKind::kMemset:
      return "memset";
    case TraceKind::kPrefetch:
      return "mem_prefetch";
    case TraceKind::kHostFunc:
      return "host_func";
    case TraceKind::kFree:
      return "free";
    case TraceKind::kProofElided:
      return "proof_elided";
  }
  return "?";
}

/// Category under which a TraceKind lands in the obs event ring (the Trace
/// class is a view layered over the ring: runtime hooks emit each observed
/// call as an obs instant and, when the JSONL trace is on, a TraceEvent).
[[nodiscard]] constexpr obs::EventKind to_obs_kind(TraceKind kind) {
  switch (kind) {
    case TraceKind::kKernelLaunch:
    case TraceKind::kProofElided:
      return obs::EventKind::kKernel;
    case TraceKind::kMemcpy:
      return obs::EventKind::kMemcpy;
    case TraceKind::kMemset:
      return obs::EventKind::kMemset;
    case TraceKind::kPrefetch:
      return obs::EventKind::kPrefetch;
    case TraceKind::kHostFunc:
      return obs::EventKind::kHostFunc;
    case TraceKind::kStreamSync:
    case TraceKind::kDeviceSync:
    case TraceKind::kEventSync:
    case TraceKind::kStreamWaitEvent:
    case TraceKind::kQuerySuccess:
      return obs::EventKind::kSync;
    case TraceKind::kStreamCreate:
    case TraceKind::kStreamDestroy:
      return obs::EventKind::kStreamOp;
    case TraceKind::kEventCreate:
    case TraceKind::kEventDestroy:
    case TraceKind::kEventRecord:
      return obs::EventKind::kEventOp;
    case TraceKind::kFree:
      return obs::EventKind::kAlloc;
  }
  return obs::EventKind::kTrace;
}

struct TraceEvent {
  std::uint64_t seq{};          ///< per-runtime monotonically increasing
  TraceKind kind{};
  const void* stream{nullptr};  ///< involved stream handle (if any)
  const void* object{nullptr};  ///< event handle / buffer pointer (if any)
  std::uint64_t bytes{};        ///< transfer/annotation size (if any)
  const char* detail{nullptr};  ///< e.g. the kernel name (static storage)
};

class Trace {
 public:
  void record(TraceKind kind, const void* stream = nullptr, const void* object = nullptr,
              std::uint64_t bytes = 0, const char* detail = nullptr) {
    events_.push_back(TraceEvent{next_seq_++, kind, stream, object, bytes, detail});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// One JSON object per line (JSONL), stable field order.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_seq_{0};
};

}  // namespace cusan
