#include "cusan/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "rsan/shadow.hpp"

namespace cusan {

ProveElide default_prove_elide() {
  const char* env = std::getenv("CUSAN_PROVE_ELIDE");
  if (env == nullptr) {
    return ProveElide::kOff;
  }
  const std::string_view v{env};
  if (v == "intra") {
    return ProveElide::kIntra;
  }
  if (v == "full") {
    return ProveElide::kFull;
  }
  return ProveElide::kOff;
}

namespace {

/// Theorem-2 side condition S2 at the dynamic granularity: two proven
/// footprints over the same allocation conflict iff their byte intervals,
/// rounded out to shadow granules (the resolution at which the region checks
/// fire), overlap. Both vectors are sorted, disjoint, base-relative.
[[nodiscard]] bool granule_overlaps(const std::vector<kir::Interval>& a,
                                    const std::vector<kir::Interval>& b) {
  constexpr std::int64_t kG = static_cast<std::int64_t>(rsan::kGranuleBytes);
  const auto round = [](const kir::Interval& iv) {
    return kir::Interval{(iv.lo / kG) * kG, ((iv.hi - 1) / kG + 1) * kG};
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const kir::Interval x = round(a[i]);
    const kir::Interval y = round(b[j]);
    if (x.hi <= y.lo) {
      ++i;
    } else if (y.hi <= x.lo) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

/// Cap on distinct in-flight footprints per allocation; past it the skip
/// gate degrades to "never skip" until the next sync instead of growing.
constexpr std::size_t kMaxInflightPerAlloc = 64;

}  // namespace

Runtime::Runtime(rsan::Runtime* tsan, typeart::Runtime* types, Config config)
    : tsan_(tsan), types_(types), config_(config) {
  CUSAN_ASSERT(tsan != nullptr && types != nullptr);
}

// -- Stream / event lifecycle ------------------------------------------------------

Runtime::StreamState& Runtime::stream_state(const cusim::Stream* stream) {
  CUSAN_ASSERT(stream != nullptr);
  const auto it = streams_.find(stream);
  if (it != streams_.end()) {
    return it->second;
  }
  StreamState state;
  state.device = stream->device();
  state.is_default = stream->is_default();
  state.non_blocking = stream->is_non_blocking();
  const std::string name = state.is_default
                               ? std::string("default stream")
                               : common::format("stream {}", stream->id());
  state.fiber = tsan_->create_fiber(rsan::CtxKind::kStreamFiber, name);
  ++counters_.streams_created;
  auto [pos, inserted] = streams_.emplace(stream, state);
  CUSAN_ASSERT(inserted);
  if (state.is_default) {
    default_states_[state.device] = &pos->second;
  }
  return pos->second;
}

Runtime::EventState& Runtime::event_state(const cusim::Event* event) {
  CUSAN_ASSERT(event != nullptr);
  return events_[event];
}

void Runtime::on_stream_create(const cusim::Stream* stream) {
  trace_record(TraceKind::kStreamCreate, stream);
  (void)stream_state(stream);
}

void Runtime::on_stream_destroy(const cusim::Stream* stream) {
  trace_record(TraceKind::kStreamDestroy, stream);
  const auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return;
  }
  // cudaStreamDestroy waits for the stream's work: terminate its arc.
  tsan_->happens_after(&it->second.complete_key);
  ++counters_.hb_after;
  tsan_->release_sync_object(&it->second.complete_key);
  tsan_->release_sync_object(&it->second.submit_key);
  tsan_->destroy_fiber(it->second.fiber);
  if (default_states_[it->second.device] == &it->second) {
    default_states_.erase(it->second.device);
  }
  streams_.erase(it);
}

void Runtime::on_event_create(const cusim::Event* event) {
  trace_record(TraceKind::kEventCreate, nullptr, event);
  (void)event_state(event);
  ++counters_.events_created;
}

void Runtime::on_event_destroy(const cusim::Event* event) {
  trace_record(TraceKind::kEventDestroy, nullptr, event);
  const auto it = events_.find(event);
  if (it == events_.end()) {
    return;
  }
  tsan_->release_sync_object(&it->second.key);
  events_.erase(it);
}

// -- Op issue protocol ---------------------------------------------------------------

void Runtime::begin_op(StreamState& ss) {
  // Order host -> stream fiber at op submission (FIFO launch order). This is
  // internal plumbing, deliberately not counted in the Table I HB counters.
  tsan_->happens_before(&ss.submit_key);
  tsan_->switch_to_fiber(ss.fiber);
  tsan_->happens_after(&ss.submit_key);

  // Legacy default-stream barrier, acquire side (paper Fig. 3): an op on the
  // default stream starts only after all prior work on blocking streams; an
  // op on a blocking stream starts only after all prior default-stream work.
  // A per-thread-mode default stream (created non-blocking, §VI-B) carries
  // no barriers in either direction.
  StreamState* default_state = nullptr;
  if (const auto it = default_states_.find(ss.device); it != default_states_.end()) {
    default_state = it->second;
  }
  if (ss.is_default && !ss.non_blocking) {
    for (auto& [stream, other] : streams_) {
      if (&other == &ss || other.non_blocking || other.device != ss.device) {
        continue;
      }
      if (other.ops_issued > other.acquired_by_default) {
        tsan_->happens_after(&other.complete_key);
        other.acquired_by_default = other.ops_issued;
        ++counters_.hb_after;
      }
    }
  } else if (!ss.non_blocking && default_state != nullptr && !default_state->non_blocking &&
             default_state->ops_issued > ss.default_ops_acquired) {
    tsan_->happens_after(&default_state->complete_key);
    ss.default_ops_acquired = default_state->ops_issued;
    ++counters_.hb_after;
  }
}

void Runtime::finish_op(StreamState& ss) {
  tsan_->happens_before(&ss.complete_key);
  ++counters_.hb_before;
  ++ss.ops_issued;
  if (ss.is_default && !ss.non_blocking) {
    // Fan the arc out to every blocking stream of the same device (paper
    // §V-A1): a later synchronization on such a stream must also cover this
    // default-stream op, because legacy semantics block the stream behind it.
    for (auto& [stream, other] : streams_) {
      if (&other == &ss || other.non_blocking || other.device != ss.device) {
        continue;
      }
      tsan_->happens_before(&other.complete_key);
      ++counters_.hb_before;
    }
  }
  tsan_->switch_to_fiber(tsan_->host_ctx());
}

// -- Kernel launches ---------------------------------------------------------------------

const char* Runtime::kernel_arg_label(const char* kernel_name, std::size_t arg_index,
                                      kir::AccessMode mode) {
  const std::uint64_t key = reinterpret_cast<std::uintptr_t>(kernel_name) * 31 +
                            arg_index * 4 + static_cast<std::uint64_t>(mode);
  const auto it = label_cache_.find(key);
  if (it != label_cache_.end()) {
    return it->second;
  }
  const char* label = tsan_->intern(
      common::format("kernel '{}' arg {} [{}]", kernel_name, arg_index, to_string(mode)));
  label_cache_.emplace(key, label);
  return label;
}

void Runtime::annotate_access(const void* ptr, std::size_t fallback_size, bool read, bool write,
                              const char* label) {
  // Paper §V-B: kernel argument accesses cover the *whole* allocation the
  // pointer belongs to, since the static analysis cannot bound the touched
  // sub-range. TypeART resolves the allocation extent.
  const void* base = ptr;
  std::size_t size = fallback_size;
  if (const auto info = types_->find(ptr); info.has_value()) {
    base = reinterpret_cast<const void*>(info->base);
    size = info->extent;
  } else if (fallback_size == 0) {
    ++counters_.unknown_kernel_args;
    return;
  }
  if (read) {
    ++counters_.kernel_annotation_calls;
    tsan_->read_range(base, size, label);
  }
  if (write) {
    ++counters_.kernel_annotation_calls;
    tsan_->write_range(base, size, label);
  }
}

void Runtime::annotate_kernel_arg(const KernelArgAccess& arg, const char* label) {
  const bool read = kir::reads(arg.mode);
  const bool write = kir::writes(arg.mode);
  const kir::ParamIntervals* pi = arg.intervals;
  const bool use_intervals = config_.use_access_intervals && pi != nullptr;
  const bool read_bounded = read && use_intervals && pi->read.is_bounded();
  const bool write_bounded = write && use_intervals && pi->write.is_bounded();
  if (!read_bounded && !write_bounded) {
    // ⊤ (or unknown) summary in every active direction: paper behaviour,
    // annotate the whole allocation.
    ++counters_.whole_range_kernel_args;
    annotate_access(arg.ptr, 0, read, write, label);
    return;
  }
  ++counters_.interval_kernel_args;
  // Resolve the allocation so intervals can be clamped to its extent.
  // Untracked pointers keep the bounded sub-ranges relative to the raw
  // pointer — strictly more information than the unknown-arg drop.
  const auto* ptr_bytes = static_cast<const char*>(arg.ptr);
  const char* alloc_lo = ptr_bytes;
  const char* alloc_hi = nullptr;
  bool tracked = false;
  if (const auto info = types_->find(arg.ptr); info.has_value()) {
    alloc_lo = reinterpret_cast<const char*>(info->base);
    alloc_hi = alloc_lo + info->extent;
    tracked = true;
  }
  const bool delegates = (read && !read_bounded) || (write && !write_bounded);
  if (!tracked && !delegates) {
    ++counters_.unknown_kernel_args;  // annotate_access would have counted it
  }
  const auto annotate_set = [&](const kir::IntervalSet& set, bool is_write) {
    std::uint64_t covered = 0;
    for (const kir::Interval& iv : set.intervals()) {
      const char* lo = ptr_bytes + iv.lo;
      const char* hi = ptr_bytes + iv.hi;
      if (tracked) {
        lo = std::max(lo, alloc_lo);
        hi = std::min(hi, alloc_hi);
      }
      if (hi <= lo) {
        continue;
      }
      const auto bytes = static_cast<std::size_t>(hi - lo);
      covered += bytes;
      ++counters_.kernel_annotation_calls;
      if (is_write) {
        tsan_->write_range(lo, bytes, label);
      } else {
        tsan_->read_range(lo, bytes, label);
      }
    }
    counters_.interval_bytes_annotated += covered;
    if (tracked) {
      const auto extent = static_cast<std::uint64_t>(alloc_hi - alloc_lo);
      counters_.interval_bytes_elided += extent > covered ? extent - covered : 0;
    }
  };
  if (read) {
    if (read_bounded) {
      annotate_set(pi->read, /*is_write=*/false);
    } else {
      annotate_access(arg.ptr, 0, /*read=*/true, /*write=*/false, label);
    }
  }
  if (write) {
    if (write_bounded) {
      annotate_set(pi->write, /*is_write=*/true);
    } else {
      annotate_access(arg.ptr, 0, /*read=*/false, /*write=*/true, label);
    }
  }
}

void Runtime::on_kernel_launch(const cusim::Stream* stream, const char* kernel_name,
                               std::span<const KernelArgAccess> args) {
  ++counters_.kernel_launches;
  trace_record(TraceKind::kKernelLaunch, stream, nullptr, 0, kernel_name);
  StreamState& ss = stream_state(stream);
  begin_op(ss);
  if (config_.track_memory_accesses) {
    launch_args(ss, stream, kernel_name, args);
  }
  finish_op(ss);
}

void Runtime::launch_args(StreamState& ss, const cusim::Stream* stream, const char* kernel_name,
                          std::span<const KernelArgAccess> args) {
  // Elision derives its footprints from the byte-precise affine summaries, so
  // it is only consistent with interval-precision annotations: under the
  // paper's whole-range mode an elided argument would silently shrink to its
  // proven sub-range and erase the coarse-annotation races that mode is meant
  // to emulate.
  const bool prove = config_.prove_elide != ProveElide::kOff && config_.use_access_intervals;
  std::vector<ArgPlan> plans;
  bool all_elided = false;
  if (prove) {
    plans.resize(args.size());
    // Pass 1: resolve allocations and build candidate footprints. An
    // argument is an elision candidate when theorem 1 proved the parameter
    // race-free and every active direction resolves to bounded byte
    // intervals; ⊤ in any active direction keeps the whole argument on the
    // tracked path (partial elision of one direction would leave the other
    // direction's cells racing against our own region).
    struct AllocUse {
      std::size_t arg_count{0};
      bool any_write{false};
    };
    std::unordered_map<const void*, AllocUse> uses;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const KernelArgAccess& arg = args[i];
      if (arg.ptr == nullptr || arg.mode == kir::AccessMode::kNone) {
        continue;
      }
      ArgPlan& plan = plans[i];
      plan.read = kir::reads(arg.mode);
      plan.write = kir::writes(arg.mode);
      const auto info = types_->find(arg.ptr);
      if (info.has_value()) {
        plan.base = reinterpret_cast<const char*>(info->base);
        plan.extent = info->extent;
        AllocUse& use = uses[plan.base];
        ++use.arg_count;
        use.any_write |= plan.write;
      }
      if (plan.base == nullptr || arg.proof == nullptr || !arg.proof->race_free) {
        continue;  // untracked or unproven: tracked path
      }
      const std::int64_t off = static_cast<const char*>(arg.ptr) - plan.base;
      const auto clamp_resolve = [&](const kir::AffineSet& set, std::vector<kir::Interval>& out) {
        if (set.is_empty()) {
          return true;  // direction provably untouched
        }
        const kir::IntervalSet resolved = set.resolve();
        if (!resolved.is_bounded()) {
          return false;
        }
        for (const kir::Interval& iv : resolved.intervals()) {
          const std::int64_t lo = std::max<std::int64_t>(iv.lo + off, 0);
          const std::int64_t hi =
              std::min<std::int64_t>(iv.hi + off, static_cast<std::int64_t>(plan.extent));
          if (hi > lo) {
            out.push_back(kir::Interval{lo, hi});
          }
        }
        return true;
      };
      bool ok = true;
      if (plan.read) {
        ok = clamp_resolve(arg.proof->read, plan.read_iv);
      }
      if (ok && plan.write) {
        ok = clamp_resolve(arg.proof->write, plan.write_iv);
      }
      plan.elide = ok;
    }
    // Pass 2: alias guard. Theorem 1 reasons about parameters as distinct
    // memory objects; two arguments landing in the same allocation with a
    // write among them void every proof over that allocation.
    all_elided = true;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const KernelArgAccess& arg = args[i];
      if (arg.ptr == nullptr || arg.mode == kir::AccessMode::kNone) {
        continue;
      }
      ArgPlan& plan = plans[i];
      if (plan.elide && plan.base != nullptr) {
        const AllocUse& use = uses[plan.base];
        if (use.arg_count > 1 && use.any_write) {
          plan.elide = false;
          ++counters_.proof_alias_rejects;
        }
      }
      all_elided &= plan.elide;
    }
    all_elided &= !args.empty();
  }

  // Full-mode memo: a repeat of the last fully-elided race-free launch may
  // refresh its regions without re-scanning, iff generation accounting shows
  // every intervening shadow tick was a proven publish and every in-flight
  // footprint from another stream is theorem-2 disjoint from ours.
  bool memo_skip = false;
  if (config_.prove_elide == ProveElide::kFull && all_elided && ss.memo.valid &&
      ss.memo.kernel == kernel_name && !inflight_saturated_) {
    bool match = ss.memo.ptrs.size() == args.size();
    for (std::size_t i = 0; match && i < args.size(); ++i) {
      match = ss.memo.ptrs[i] == args[i].ptr;
    }
    if (match &&
        tsan_->shadow_generation() - ss.memo.shadow_gen ==
            tsan_->counters().proven_range_calls - ss.memo.proven_calls) {
      memo_skip = true;
      for (std::size_t i = 0; memo_skip && i < plans.size(); ++i) {
        const ArgPlan& plan = plans[i];
        if (!plan.elide) {
          continue;
        }
        const auto it = inflight_.find(plan.base);
        if (it == inflight_.end()) {
          continue;
        }
        for (const InflightProof& fp : it->second) {
          if (fp.fiber == ss.fiber) {
            continue;  // program order on the same stream: never a conflict
          }
          // A write on either side with overlapping granules breaks the
          // cross-stream disjointness theorem — fall back to the full check.
          if (granule_overlaps(plan.write_iv, fp.write_iv) ||
              granule_overlaps(plan.write_iv, fp.read_iv) ||
              granule_overlaps(plan.read_iv, fp.write_iv)) {
            memo_skip = false;
            ++counters_.proof_cross_stream_overlaps;
            break;
          }
        }
      }
    }
  }

  bool any_elided = false;
  bool all_clean = true;
  std::uint64_t elided_bytes = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const KernelArgAccess& arg = args[i];
    if (arg.ptr == nullptr || arg.mode == kir::AccessMode::kNone) {
      continue;
    }
    const char* label = kernel_arg_label(kernel_name, i, arg.mode);
    if (!prove || !plans[i].elide) {
      annotate_kernel_arg(arg, label);
      continue;
    }
    const ArgPlan& plan = plans[i];
    any_elided = true;
    ++counters_.proof_elided_args;
    for (const kir::Interval& iv : plan.read_iv) {
      elided_bytes += static_cast<std::uint64_t>(iv.hi - iv.lo);
      all_clean &= tsan_->proven_range(plan.base + iv.lo, static_cast<std::size_t>(iv.hi - iv.lo),
                                       /*is_write=*/false, label, /*check=*/!memo_skip);
    }
    for (const kir::Interval& iv : plan.write_iv) {
      elided_bytes += static_cast<std::uint64_t>(iv.hi - iv.lo);
      all_clean &= tsan_->proven_range(plan.base + iv.lo, static_cast<std::size_t>(iv.hi - iv.lo),
                                       /*is_write=*/true, label, /*check=*/!memo_skip);
    }
    if (config_.prove_elide == ProveElide::kFull && !memo_skip) {
      // Record the footprint for later theorem-2 gates. A memo-skipped
      // repeat is already represented by the entry its checked predecessor
      // stored (same kernel, same pointers, same footprint).
      auto& entries = inflight_[plan.base];
      const auto same = [&](const InflightProof& fp) {
        return fp.fiber == ss.fiber && fp.read_iv == plan.read_iv && fp.write_iv == plan.write_iv;
      };
      if (std::none_of(entries.begin(), entries.end(), same)) {
        if (entries.size() >= kMaxInflightPerAlloc) {
          inflight_saturated_ = true;  // degrade: deny skips until next sync
        } else {
          entries.push_back(InflightProof{ss.fiber, plan.read_iv, plan.write_iv});
        }
      }
    }
  }

  if (any_elided) {
    ++counters_.proof_elided_launches;
    counters_.proof_elided_bytes += elided_bytes;
    if (memo_skip) {
      ++counters_.proof_fast_launches;
    }
    trace_record(TraceKind::kProofElided, stream, nullptr, elided_bytes, kernel_name);
    obs::Counter*& metric = elide_metrics_[kernel_name];
    if (metric == nullptr) {
      metric = &obs::metric(common::format("cusan.prove_elide.{}.launches", kernel_name));
    }
    metric->add(1);
  }
  if (config_.prove_elide == ProveElide::kFull) {
    ss.memo.valid = all_elided && all_clean;
    if (ss.memo.valid) {
      ss.memo.kernel = kernel_name;
      ss.memo.ptrs.assign(args.size(), nullptr);
      for (std::size_t i = 0; i < args.size(); ++i) {
        ss.memo.ptrs[i] = args[i].ptr;
      }
      ss.memo.shadow_gen = tsan_->shadow_generation();
      ss.memo.proven_calls = tsan_->counters().proven_range_calls;
    }
  }
}

// -- Explicit synchronization ---------------------------------------------------------------

void Runtime::on_stream_synchronize(const cusim::Stream* stream) {
  ++counters_.sync_calls;
  trace_record(TraceKind::kStreamSync, stream);
  clear_inflight();
  StreamState& ss = stream_state(stream);
  tsan_->happens_after(&ss.complete_key);
  ++counters_.hb_after;
  if (ss.is_default && !ss.non_blocking) {
    // Host sync on the legacy default stream also covers all blocking
    // streams of its device (paper §IV-A-e).
    for (auto& [s, other] : streams_) {
      if (&other == &ss || other.non_blocking || other.device != ss.device) {
        continue;
      }
      tsan_->happens_after(&other.complete_key);
      ++counters_.hb_after;
    }
  }
}

void Runtime::on_device_synchronize() {
  ++counters_.sync_calls;
  trace_record(TraceKind::kDeviceSync);
  clear_inflight();
  // Terminate the arc of every stream, including non-blocking ones.
  for (auto& [stream, state] : streams_) {
    tsan_->happens_after(&state.complete_key);
    ++counters_.hb_after;
  }
}

void Runtime::on_device_synchronize(const cusim::Device* device) {
  ++counters_.sync_calls;
  trace_record(TraceKind::kDeviceSync);
  clear_inflight();
  // Only the given device's streams are covered (multi-GPU ranks).
  for (auto& [stream, state] : streams_) {
    if (state.device != device) {
      continue;
    }
    tsan_->happens_after(&state.complete_key);
    ++counters_.hb_after;
  }
}

void Runtime::on_event_record(const cusim::Event* event, const cusim::Stream* stream) {
  ++counters_.event_records;
  trace_record(TraceKind::kEventRecord, stream, event);
  StreamState& ss = stream_state(stream);
  EventState& es = event_state(event);
  es.stream = stream;
  // The event captures the stream's progress: release the stream fiber's
  // clock on the event's sync object.
  tsan_->switch_to_fiber(ss.fiber);
  tsan_->happens_before(&es.key);
  ++counters_.hb_before;
  tsan_->switch_to_fiber(tsan_->host_ctx());
}

void Runtime::on_event_synchronize(const cusim::Event* event) {
  ++counters_.sync_calls;
  trace_record(TraceKind::kEventSync, nullptr, event);
  clear_inflight();
  EventState& es = event_state(event);
  if (es.stream == nullptr) {
    return;  // never recorded
  }
  tsan_->happens_after(&es.key);
  ++counters_.hb_after;
}

void Runtime::on_stream_wait_event(const cusim::Stream* stream, const cusim::Event* event) {
  ++counters_.sync_calls;
  trace_record(TraceKind::kStreamWaitEvent, stream, event);
  EventState& es = event_state(event);
  if (es.stream == nullptr) {
    return;
  }
  StreamState& ss = stream_state(stream);
  // The waiting stream's future work is ordered after the event.
  tsan_->switch_to_fiber(ss.fiber);
  tsan_->happens_after(&es.key);
  ++counters_.hb_after;
  tsan_->switch_to_fiber(tsan_->host_ctx());
}

void Runtime::on_stream_query_success(const cusim::Stream* stream) {
  // A successful query can be used as a busy-wait: treat it as
  // synchronization (paper §III-B1).
  ++counters_.sync_calls;
  trace_record(TraceKind::kQuerySuccess, stream);
  clear_inflight();
  StreamState& ss = stream_state(stream);
  tsan_->happens_after(&ss.complete_key);
  ++counters_.hb_after;
}

void Runtime::on_event_query_success(const cusim::Event* event) {
  ++counters_.sync_calls;
  trace_record(TraceKind::kQuerySuccess, nullptr, event);
  clear_inflight();
  EventState& es = event_state(event);
  if (es.stream == nullptr) {
    return;
  }
  tsan_->happens_after(&es.key);
  ++counters_.hb_after;
}

// -- Memory operations --------------------------------------------------------------------------

cusim::MemKind Runtime::kind_of(const void* ptr) const {
  CUSAN_ASSERT_MSG(!devices_.empty(), "cusan::Runtime used before bind_device()");
  // UVA: any device can classify the pointer; scan registries until one
  // claims it (unclaimed pointers are pageable host memory).
  for (const cusim::Device* device : devices_) {
    const cusim::PointerAttributes attrs = device->pointer_attributes(ptr);
    if (attrs.base != nullptr) {
      return attrs.kind;
    }
  }
  return cusim::MemKind::kPageableHost;
}

void Runtime::on_memcpy(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir) {
  ++counters_.memcpys;
  trace_record(TraceKind::kMemcpy, nullptr, dst, bytes, "cudaMemcpy");
  CUSAN_ASSERT(!devices_.empty());
  StreamState& ss = stream_state(devices_.front()->default_stream());
  begin_op(ss);
  if (config_.track_memory_accesses) {
    tsan_->read_range(src, bytes, "cudaMemcpy (source)");
    tsan_->write_range(dst, bytes, "cudaMemcpy (destination)");
  }
  finish_op(ss);
  if (model_host_sync(cusim::MemOpClass::kMemcpy, dir, kind_of(src), kind_of(dst))) {
    tsan_->happens_after(&ss.complete_key);
    ++counters_.hb_after;
  }
}

void Runtime::on_memcpy_async(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir,
                              const cusim::Stream* stream) {
  ++counters_.memcpys;
  trace_record(TraceKind::kMemcpy, stream, dst, bytes, "cudaMemcpyAsync");
  StreamState& ss = stream_state(stream);
  begin_op(ss);
  if (config_.track_memory_accesses) {
    tsan_->read_range(src, bytes, "cudaMemcpyAsync (source)");
    tsan_->write_range(dst, bytes, "cudaMemcpyAsync (destination)");
  }
  finish_op(ss);
  if (model_host_sync(cusim::MemOpClass::kMemcpyAsync, dir, kind_of(src), kind_of(dst))) {
    tsan_->happens_after(&ss.complete_key);
    ++counters_.hb_after;
  }
}

void Runtime::on_memset(void* dst, std::size_t bytes) {
  ++counters_.memsets;
  trace_record(TraceKind::kMemset, nullptr, dst, bytes, "cudaMemset");
  CUSAN_ASSERT(!devices_.empty());
  StreamState& ss = stream_state(devices_.front()->default_stream());
  begin_op(ss);
  if (config_.track_memory_accesses) {
    tsan_->write_range(dst, bytes, "cudaMemset");
  }
  finish_op(ss);
  if (model_host_sync(cusim::MemOpClass::kMemset, cusim::MemcpyDir::kHostToDevice,
                      cusim::MemKind::kPageableHost, kind_of(dst))) {
    tsan_->happens_after(&ss.complete_key);
    ++counters_.hb_after;
  }
}

void Runtime::on_memset_async(void* dst, std::size_t bytes, const cusim::Stream* stream) {
  ++counters_.memsets;
  trace_record(TraceKind::kMemset, stream, dst, bytes, "cudaMemsetAsync");
  StreamState& ss = stream_state(stream);
  begin_op(ss);
  if (config_.track_memory_accesses) {
    tsan_->write_range(dst, bytes, "cudaMemsetAsync");
  }
  finish_op(ss);
}

void Runtime::on_memcpy_2d(void* dst, std::size_t dpitch, const void* src, std::size_t spitch,
                           std::size_t width, std::size_t height, cusim::MemcpyDir dir,
                           const cusim::Stream* stream, bool async) {
  ++counters_.memcpys;
  trace_record(TraceKind::kMemcpy, stream, dst, width * height, "cudaMemcpy2D");
  CUSAN_ASSERT(!devices_.empty());
  StreamState& ss =
      stream_state(stream != nullptr ? stream : devices_.front()->default_stream());
  begin_op(ss);
  if (config_.track_memory_accesses) {
    // Only the `width` bytes of each row are accessed; the pitch gaps are not
    // touched, so they must not be annotated (no false races on the holes).
    const auto* s = static_cast<const std::byte*>(src);
    auto* d = static_cast<std::byte*>(dst);
    for (std::size_t row = 0; row < height; ++row) {
      tsan_->read_range(s + row * spitch, width, "cudaMemcpy2D (source row)");
      tsan_->write_range(d + row * dpitch, width, "cudaMemcpy2D (destination row)");
    }
  }
  finish_op(ss);
  const auto op_class = async ? cusim::MemOpClass::kMemcpyAsync : cusim::MemOpClass::kMemcpy;
  if (model_host_sync(op_class, dir, kind_of(src), kind_of(dst))) {
    tsan_->happens_after(&ss.complete_key);
    ++counters_.hb_after;
  }
}

void Runtime::on_mem_prefetch(const cusim::Stream* stream) {
  ++counters_.prefetches;
  trace_record(TraceKind::kPrefetch, stream);
  StreamState& ss = stream_state(stream);
  begin_op(ss);
  finish_op(ss);
}

void Runtime::on_host_func(const cusim::Stream* stream) {
  ++counters_.host_funcs;
  trace_record(TraceKind::kHostFunc, stream);
  StreamState& ss = stream_state(stream);
  begin_op(ss);
  finish_op(ss);
}

// -- Allocation lifecycle --------------------------------------------------------------------------

void Runtime::on_free(const void* ptr) {
  trace_record(TraceKind::kFree, nullptr, ptr);
  if (const auto info = types_->find(ptr); info.has_value()) {
    tsan_->reset_shadow_range(reinterpret_cast<const void*>(info->base), info->extent);
    // The reused address must not inherit stale proven footprints.
    inflight_.erase(reinterpret_cast<const char*>(info->base));
  }
}

}  // namespace cusan
