// CUDA-level event counters reported by CuSan (the "CUDA" block of the
// paper's Table I). The "TSan" block comes from rsan::Counters.
#pragma once

#include <cstdint>

namespace cusan {

struct Counters {
  std::uint64_t streams_created{};   ///< user streams + default stream on first use
  std::uint64_t events_created{};
  std::uint64_t event_records{};
  std::uint64_t memsets{};           ///< memset + memsetAsync
  std::uint64_t memcpys{};           ///< memcpy + memcpyAsync
  std::uint64_t sync_calls{};        ///< device/stream/event synchronize + successful queries + streamWaitEvent
  std::uint64_t kernel_launches{};
  std::uint64_t prefetches{};        ///< cudaMemPrefetchAsync hints
  std::uint64_t host_funcs{};        ///< cudaLaunchHostFunc callbacks
  std::uint64_t hb_before{};         ///< semantic happens-before arcs started by CuSan
  std::uint64_t hb_after{};          ///< semantic happens-before arcs terminated by CuSan
  std::uint64_t unknown_kernel_args{}; ///< pointer args with no TypeART allocation info
  std::uint64_t interval_kernel_args{};    ///< args annotated via bounded byte intervals
  std::uint64_t whole_range_kernel_args{}; ///< args annotated whole-allocation (⊤ fallback)
  std::uint64_t interval_bytes_annotated{}; ///< bytes covered by interval annotations
  std::uint64_t interval_bytes_elided{};   ///< allocation bytes skipped thanks to intervals
  std::uint64_t kernel_annotation_calls{}; ///< rsan range calls issued for kernel arguments
  // Prove-and-elide (CUSAN_PROVE_ELIDE; all zero when off).
  std::uint64_t proof_elided_launches{};      ///< launches with at least one elided argument
  std::uint64_t proof_elided_args{};          ///< arguments elided via an affine proof
  std::uint64_t proof_elided_bytes{};         ///< bytes covered by elided annotations
  std::uint64_t proof_fast_launches{};        ///< launches fully skipped via the generation memo
  std::uint64_t proof_alias_rejects{};        ///< proofs voided by aliasing pointer arguments
  std::uint64_t proof_cross_stream_overlaps{}; ///< memo skips denied by theorem-2 overlap
};

/// Visit every counter as (name, value) — the one enumeration the obs
/// metrics publication, JSON dumps and registry-equality tests all share.
template <typename Fn>
void for_each_counter(const Counters& c, Fn&& fn) {
  fn("streams_created", c.streams_created);
  fn("events_created", c.events_created);
  fn("event_records", c.event_records);
  fn("memsets", c.memsets);
  fn("memcpys", c.memcpys);
  fn("sync_calls", c.sync_calls);
  fn("kernel_launches", c.kernel_launches);
  fn("prefetches", c.prefetches);
  fn("host_funcs", c.host_funcs);
  fn("hb_before", c.hb_before);
  fn("hb_after", c.hb_after);
  fn("unknown_kernel_args", c.unknown_kernel_args);
  fn("interval_kernel_args", c.interval_kernel_args);
  fn("whole_range_kernel_args", c.whole_range_kernel_args);
  fn("interval_bytes_annotated", c.interval_bytes_annotated);
  fn("interval_bytes_elided", c.interval_bytes_elided);
  fn("kernel_annotation_calls", c.kernel_annotation_calls);
  fn("proof_elided_launches", c.proof_elided_launches);
  fn("proof_elided_args", c.proof_elided_args);
  fn("proof_elided_bytes", c.proof_elided_bytes);
  fn("proof_fast_launches", c.proof_fast_launches);
  fn("proof_alias_rejects", c.proof_alias_rejects);
  fn("proof_cross_stream_overlaps", c.proof_cross_stream_overlaps);
}

}  // namespace cusan
