// CUDA-level event counters reported by CuSan (the "CUDA" block of the
// paper's Table I). The "TSan" block comes from rsan::Counters.
#pragma once

#include <cstdint>

namespace cusan {

struct Counters {
  std::uint64_t streams_created{};   ///< user streams + default stream on first use
  std::uint64_t events_created{};
  std::uint64_t event_records{};
  std::uint64_t memsets{};           ///< memset + memsetAsync
  std::uint64_t memcpys{};           ///< memcpy + memcpyAsync
  std::uint64_t sync_calls{};        ///< device/stream/event synchronize + successful queries + streamWaitEvent
  std::uint64_t kernel_launches{};
  std::uint64_t prefetches{};        ///< cudaMemPrefetchAsync hints
  std::uint64_t host_funcs{};        ///< cudaLaunchHostFunc callbacks
  std::uint64_t hb_before{};         ///< semantic happens-before arcs started by CuSan
  std::uint64_t hb_after{};          ///< semantic happens-before arcs terminated by CuSan
  std::uint64_t unknown_kernel_args{}; ///< pointer args with no TypeART allocation info
  std::uint64_t interval_kernel_args{};    ///< args annotated via bounded byte intervals
  std::uint64_t whole_range_kernel_args{}; ///< args annotated whole-allocation (⊤ fallback)
  std::uint64_t interval_bytes_annotated{}; ///< bytes covered by interval annotations
  std::uint64_t interval_bytes_elided{};   ///< allocation bytes skipped thanks to intervals
  std::uint64_t kernel_annotation_calls{}; ///< rsan range calls issued for kernel arguments
};

}  // namespace cusan
