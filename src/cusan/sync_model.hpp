// CuSan's model of CUDA's implicit host-synchrony (paper §III-B2, §III-C).
// This is the *tool's interpretation* used for race detection; wherever the
// CUDA documentation says an operation "may be synchronous", the model is
// pessimistic and assumes NO synchronization, so that races cannot be masked
// by luck-of-the-driver behaviour. It therefore deliberately differs from
// the simulator's ground-truth table (cusim/sync_behavior.hpp) in exactly
// those "may be" cases.
#pragma once

#include "cusim/sync_behavior.hpp"
#include "cusim/types.hpp"

namespace cusan {

/// Does the tool credit this memory operation with device->host
/// synchronization (terminating happens-before arcs on its stream)?
[[nodiscard]] constexpr bool model_host_sync(cusim::MemOpClass op, cusim::MemcpyDir dir,
                                             cusim::MemKind src_kind, cusim::MemKind dst_kind) {
  using cusim::MemcpyDir;
  using cusim::MemKind;
  using cusim::MemOpClass;
  const bool pageable_involved =
      src_kind == MemKind::kPageableHost || dst_kind == MemKind::kPageableHost;
  switch (op) {
    case MemOpClass::kMemcpy:
      // Documented synchronous for transfers touching host memory; D2D is
      // documented asynchronous.
      return dir != MemcpyDir::kDeviceToDevice;
    case MemOpClass::kMemcpyAsync:
      // Ground truth: staged pageable transfers behave synchronously. The
      // documentation says "may be synchronous" — pessimistically assume no
      // synchronization so a race hidden by staging is still reported.
      (void)pageable_involved;
      return false;
    case MemOpClass::kMemset:
      // Documented: asynchronous w.r.t. host, except pinned-host targets.
      return dst_kind == MemKind::kPinnedHost;
    case MemOpClass::kMemsetAsync:
      return false;
  }
  return false;  // unreachable; pessimistic
}

}  // namespace cusan
