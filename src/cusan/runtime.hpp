// The CuSan runtime (paper §IV-A): receives callbacks from the instrumented
// CUDA API (emitted by capi, standing in for the LLVM pass of §IV-B2) and
// maps CUDA's concurrency/synchronization semantics onto the rsan (TSan)
// fiber and annotation API.
//
//  * every CUDA stream is a distinct fiber;
//  * a kernel launch switches to the stream fiber, annotates each pointer
//    argument's whole allocation range per its statically derived access
//    mode (sizes resolved via TypeART), and starts a happens-before arc;
//  * explicit and implicit synchronization terminates arcs;
//  * legacy default-stream semantics are modelled by fanning arcs out to /
//    in from blocking streams (paper Fig. 3 / §IV-A-e).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cusan/counters.hpp"
#include "cusan/sync_model.hpp"
#include "cusan/trace.hpp"
#include "cusim/device.hpp"
#include "kir/access_analysis.hpp"
#include "kir/affine_analysis.hpp"
#include "kir/interval_analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "rsan/runtime.hpp"
#include "typeart/runtime.hpp"

namespace cusan {

/// Prove-and-elide mode ladder (CUSAN_PROVE_ELIDE, docs/architecture.md):
///  * kOff   — every launch annotates tracked ranges (paper behaviour).
///  * kIntra — arguments whose affine summary satisfies theorem 1 (per-thread
///             disjointness) take the proven-region path: a check-only shadow
///             scan plus a region publish, with zero shadow-cell stores.
///  * kFull  — kIntra, plus a per-stream generation memo: a repeat launch of
///             a fully-proven kernel whose only intervening shadow activity
///             was other proven publishes that are theorem-2 disjoint
///             (cross-stream) skips even the check-only scan in O(#args).
enum class ProveElide : std::uint8_t { kOff, kIntra, kFull };

/// CUSAN_PROVE_ELIDE environment default: "intra"/"full" select the elision
/// tiers, anything else (or unset) is kOff.
[[nodiscard]] ProveElide default_prove_elide();

struct Config {
  /// Ablation knob (paper §V-B): when false, kernel/memcpy/memset memory
  /// ranges are not annotated, but fibers and synchronization modelling stay
  /// active. The paper reports near-vanilla overhead in this mode.
  bool track_memory_accesses = true;
  /// Record every intercepted CUDA call into an in-memory trace
  /// (Runtime::trace()), exportable as JSONL for diagnosis.
  bool enable_trace = false;
  /// When true (default), kernel arguments whose kir interval summary bounds
  /// the touched byte sub-range are annotated only over those sub-ranges
  /// (clamped to the TypeART allocation); ⊤ summaries fall back to the whole
  /// allocation. When false, every argument uses the paper's whole-range
  /// annotation (ablation baseline).
  bool use_access_intervals = true;
  /// Prove-and-elide tier; see ProveElide. Detection verdicts are
  /// bit-identical across tiers (enforced by the differential tests) — the
  /// tiers trade dynamic tracking work against static proof obligations.
  ProveElide prove_elide = default_prove_elide();
};

/// One pointer argument of a kernel launch, paired with the access mode the
/// kir dataflow analysis derived for the corresponding parameter.
struct KernelArgAccess {
  const void* ptr{nullptr};
  kir::AccessMode mode{kir::AccessMode::kNone};
  /// Byte-precise access intervals for the parameter (relative to `ptr`);
  /// nullptr means "unknown" and is treated as ⊤ (whole allocation).
  const kir::ParamIntervals* intervals{nullptr};
  /// Affine summary + theorem-1 verdict for the parameter; nullptr (or a
  /// proof that is not race_free) keeps the argument on the tracked path.
  const kir::ParamProof* proof{nullptr};
};

class Runtime {
 public:
  /// `tsan` and `types` must outlive the Runtime. One Runtime per rank.
  Runtime(rsan::Runtime* tsan, typeart::Runtime* types, Config config = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // -- Stream / event lifecycle callbacks --------------------------------------

  void on_stream_create(const cusim::Stream* stream);
  void on_stream_destroy(const cusim::Stream* stream);
  void on_event_create(const cusim::Event* event);
  void on_event_destroy(const cusim::Event* event);

  // -- Kernel launches -----------------------------------------------------------

  /// `kernel_name` must have static storage duration (it labels reports).
  void on_kernel_launch(const cusim::Stream* stream, const char* kernel_name,
                        std::span<const KernelArgAccess> args);

  // -- Explicit synchronization -----------------------------------------------------

  void on_stream_synchronize(const cusim::Stream* stream);
  /// Terminate the arcs of every stream of every bound device.
  void on_device_synchronize();
  /// cudaDeviceSynchronize with an explicit device (multi-GPU ranks): only
  /// that device's streams are synchronized.
  void on_device_synchronize(const cusim::Device* device);
  void on_event_record(const cusim::Event* event, const cusim::Stream* stream);
  void on_event_synchronize(const cusim::Event* event);
  void on_stream_wait_event(const cusim::Stream* stream, const cusim::Event* event);
  /// Successful cudaStreamQuery — a busy-wait synchronization point (§III-B1).
  void on_stream_query_success(const cusim::Stream* stream);
  void on_event_query_success(const cusim::Event* event);

  // -- Memory operations (implicit synchronization, §III-B2) -----------------------

  void on_memcpy(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir);
  void on_memcpy_async(void* dst, const void* src, std::size_t bytes, cusim::MemcpyDir dir,
                       const cusim::Stream* stream);
  void on_memset(void* dst, std::size_t bytes);
  void on_memset_async(void* dst, std::size_t bytes, const cusim::Stream* stream);

  /// cudaMemcpy2D(Async): per-row access annotations, memcpy synchrony.
  void on_memcpy_2d(void* dst, std::size_t dpitch, const void* src, std::size_t spitch,
                    std::size_t width, std::size_t height, cusim::MemcpyDir dir,
                    const cusim::Stream* stream, bool async);
  /// cudaMemPrefetchAsync: an ordering-only stream op — prefetching does not
  /// constitute a data access, so no ranges are annotated.
  void on_mem_prefetch(const cusim::Stream* stream);
  /// cudaLaunchHostFunc: a stream op whose body's accesses are opaque to the
  /// analysis (documented limitation); ordering semantics are modelled.
  void on_host_func(const cusim::Stream* stream);

  // -- Allocation lifecycle ----------------------------------------------------------

  /// Clears shadow state for freed device memory so address reuse cannot
  /// produce stale-epoch false races.
  void on_free(const void* ptr);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] rsan::Runtime& tsan() { return *tsan_; }
  [[nodiscard]] typeart::Runtime& typeart_rt() { return *types_; }
  /// Register a device with this runtime ("context per CUDA device",
  /// paper §IV-A-a). May be called multiple times for multi-GPU ranks; the
  /// first bound device is the primary one (its legacy stream backs the
  /// no-stream memory-op overloads).
  void bind_device(const cusim::Device* device) { devices_.push_back(device); }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

 private:
  /// Full-mode launch memo (theorem 2 + generation accounting): remembers the
  /// last fully-elided, race-free launch on the stream. A repeat with the
  /// same kernel and argument pointers may skip even the check-only scan iff
  /// every shadow-generation tick since was a proven-region publish (checked
  /// against rsan's proven_range_calls counter) and every publish from
  /// another stream is theorem-2 disjoint from this launch's footprint.
  struct LaunchMemo {
    const char* kernel{nullptr};
    std::vector<const void*> ptrs;
    std::uint64_t shadow_gen{0};
    std::uint64_t proven_calls{0};
    bool valid{false};
  };

  struct StreamState {
    rsan::CtxId fiber{rsan::kInvalidCtx};
    const cusim::Device* device{nullptr};
    bool is_default{false};
    bool non_blocking{false};
    std::uint64_t ops_issued{0};
    // Legacy-barrier dirty tracking: last observed op counts of the "other
    // side" when this stream last acquired it.
    std::uint64_t default_ops_acquired{0};
    char complete_key{};  ///< &complete_key is the stream's HB sync object
    char submit_key{};    ///< &submit_key orders host -> fiber at op issue
    std::uint64_t acquired_by_default{0};  ///< this stream's ops_issued when default last acquired it
    LaunchMemo memo;
  };

  struct EventState {
    const cusim::Stream* stream{nullptr};
    char key{};  ///< &key is the event's HB sync object
  };

  StreamState& stream_state(const cusim::Stream* stream);
  EventState& event_state(const cusim::Event* event);

  /// Common op-issue protocol: submit-order sync, fiber switch, legacy
  /// barrier acquires. Leaves the current fiber ON the stream fiber; caller
  /// must call finish_op afterwards.
  void begin_op(StreamState& ss);
  /// Start the completion arc (+ legacy fan-out) and return to the host.
  void finish_op(StreamState& ss);

  /// Annotate an access against the *whole allocation* containing `ptr`
  /// (paper §V-B); falls back to [ptr, ptr+fallback_size) for untracked
  /// memory.
  void annotate_access(const void* ptr, std::size_t fallback_size, bool read, bool write,
                       const char* label);

  /// Interval-refined kernel-argument annotation: when the kir summary bounds
  /// the touched byte sub-ranges, annotate only those ranges (clamped to the
  /// TypeART allocation extent); directions whose summary is ⊤/unknown fall
  /// back to whole-allocation annotate_access.
  void annotate_kernel_arg(const KernelArgAccess& arg, const char* label);

  /// Per-argument elision plan, built at launch when prove_elide is on. The
  /// interval vectors are clamped to the allocation and made base-relative so
  /// footprints of different arguments over the same allocation compare.
  struct ArgPlan {
    bool elide{false};
    bool read{false};
    bool write{false};
    const char* base{nullptr};
    std::size_t extent{0};
    std::vector<kir::Interval> read_iv;
    std::vector<kir::Interval> write_iv;
  };

  /// One launch's proven footprint over an allocation, kept while no
  /// host-ordering synchronization has happened — the theorem-2 witnesses a
  /// later memo skip must be disjoint from.
  struct InflightProof {
    rsan::CtxId fiber{rsan::kInvalidCtx};
    std::vector<kir::Interval> read_iv;
    std::vector<kir::Interval> write_iv;
  };

  /// Kernel-argument annotation for one launch: decides per-arg elision
  /// (alias guard + bounded affine resolution), applies the full-mode memo,
  /// and routes each argument to the proven or the tracked path.
  void launch_args(StreamState& ss, const cusim::Stream* stream, const char* kernel_name,
                   std::span<const KernelArgAccess> args);

  /// Host-ordering synchronization observed: in-flight proven footprints are
  /// no longer concurrent with future launches (begin_op imports the host's
  /// acquired clock into the launching fiber).
  void clear_inflight() {
    inflight_.clear();
    inflight_saturated_ = false;
  }

  [[nodiscard]] const char* kernel_arg_label(const char* kernel_name, std::size_t arg_index,
                                             kir::AccessMode mode);
  [[nodiscard]] cusim::MemKind kind_of(const void* ptr) const;

  void trace_record(TraceKind kind, const void* stream = nullptr, const void* object = nullptr,
                    std::uint64_t bytes = 0, const char* detail = nullptr) {
    // Every observed CUDA call is an instant on the rank's host track
    // (emit_instant is one relaxed load when CUSAN_TRACE is off); the legacy
    // JSONL trace remains a separately-gated view of the same stream.
    obs::emit_instant(to_obs_kind(kind), obs::kHostTrack,
                      detail != nullptr ? detail : to_string(kind), bytes);
    if (config_.enable_trace) {
      trace_.record(kind, stream, object, bytes, detail);
    }
  }

  rsan::Runtime* tsan_;
  typeart::Runtime* types_;
  std::vector<const cusim::Device*> devices_;
  Config config_;
  Counters counters_;
  Trace trace_;
  std::unordered_map<const cusim::Stream*, StreamState> streams_;
  std::unordered_map<const cusim::Event*, EventState> events_;
  std::unordered_map<const cusim::Device*, StreamState*> default_states_;
  std::unordered_map<std::uint64_t, const char*> label_cache_;
  /// Full-mode theorem-2 state: proven footprints per allocation base, alive
  /// until the next host-ordering sync.
  std::unordered_map<const void*, std::vector<InflightProof>> inflight_;
  bool inflight_saturated_{false};
  /// Per-kernel elision metrics (obs MetricsRegistry), cached by kernel name.
  std::unordered_map<const void*, obs::Counter*> elide_metrics_;
};

}  // namespace cusan
