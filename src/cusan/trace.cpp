#include "cusan/trace.hpp"

#include "common/format.hpp"

namespace cusan {

std::string Trace::to_jsonl() const {
  std::string out;
  out.reserve(events_.size() * 96);
  for (const TraceEvent& event : events_) {
    out += common::format(R"({"seq":{},"kind":"{}")", event.seq, to_string(event.kind));
    if (event.stream != nullptr) {
      out += common::format(R"(,"stream":"{}")", common::hex(reinterpret_cast<std::uintptr_t>(
                                                     event.stream)));
    }
    if (event.object != nullptr) {
      out += common::format(R"(,"object":"{}")", common::hex(reinterpret_cast<std::uintptr_t>(
                                                     event.object)));
    }
    if (event.bytes != 0) {
      out += common::format(R"(,"bytes":{})", event.bytes);
    }
    if (event.detail != nullptr) {
      out += common::format(R"(,"detail":"{}")", event.detail);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cusan
