#include "schedsim/controller.hpp"

#include "schedsim/execution_graph.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/thread_context.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/ring.hpp"

namespace schedsim {

namespace {

[[nodiscard]] bool parse_error(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

[[nodiscard]] bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (*end != '\0') {
    return false;
  }
  *out = parsed;
  return true;
}

[[nodiscard]] bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// The exporter track a decision lands on: stream-worker actors map back to
/// their stream's track so decisions line up with the ops they reorder.
[[nodiscard]] std::uint32_t actor_track(const ActorId& actor) {
  return actor.kind == 's' ? obs::stream_track(actor.local % 4096u) : obs::kHostTrack;
}

/// Cached counter handles, re-resolved when the calling thread's current
/// registry changes (session-scoped runs): a plain function-local static
/// would pin the handle to whichever registry was current first and bleed
/// counts across sessions.
struct SchedCounters {
  obs::MetricsRegistry* owner{nullptr};
  obs::Counter* decisions{nullptr};
  obs::Counter* underruns{nullptr};
  obs::Counter* divergences{nullptr};
};

[[nodiscard]] SchedCounters& sched_counters() {
  thread_local SchedCounters cache;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  if (cache.owner != &registry) {
    cache.owner = &registry;
    cache.decisions = &registry.counter("sched.decisions");
    cache.underruns = &registry.counter("sched.replay_underruns");
    cache.divergences = &registry.counter("sched.divergences");
  }
  return cache;
}

}  // namespace

bool parse_schedule(const std::string& text, Config* out, std::string* error) {
  Config config;
  if (text.empty() || text == "0" || text == "off" || text == "none") {
    *out = config;
    return true;
  }
  bool have_mode = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find_first_of(";,", pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string clause = text.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) {
      if (end == text.size()) {
        break;
      }
      continue;
    }
    const std::size_t colon = clause.find(':');
    const std::string head = clause.substr(0, colon);
    const std::string arg = colon == std::string::npos ? "" : clause.substr(colon + 1);
    if (head == "free") {
      if (have_mode) {
        return parse_error(error, "multiple strategy clauses");
      }
      have_mode = true;
      config.mode = Mode::kFree;
    } else if (head == "seed") {
      if (have_mode) {
        return parse_error(error, "multiple strategy clauses");
      }
      have_mode = true;
      config.mode = Mode::kSeed;
      if (!parse_u64(arg, &config.seed)) {
        return parse_error(error, common::format("seed: not a number: '{}'", arg));
      }
    } else if (head == "replay") {
      if (have_mode) {
        return parse_error(error, "multiple strategy clauses");
      }
      if (arg.empty()) {
        return parse_error(error, "replay: missing path");
      }
      have_mode = true;
      config.mode = Mode::kReplay;
      config.replay_path = arg;
    } else if (head == "dpor") {
      if (have_mode) {
        return parse_error(error, "multiple strategy clauses");
      }
      have_mode = true;
      config.mode = Mode::kDpor;
    } else if (head == "bound") {
      std::uint64_t k = 0;
      if (!parse_u64(arg, &k) || k == 0) {
        return parse_error(error, common::format("bound: not a positive number: '{}'", arg));
      }
      config.bound = static_cast<std::uint32_t>(k);
    } else if (head == "graph") {
      config.graph = true;
      config.graph_path = arg;  // empty: in-memory only
    } else if (head == "record") {
      if (arg.empty()) {
        return parse_error(error, "record: missing path");
      }
      config.record = true;
      config.record_path = arg;
    } else if (head == "pct") {
      std::uint64_t k = 0;
      if (!parse_u64(arg, &k) || k == 0) {
        return parse_error(error, common::format("pct: not a positive number: '{}'", arg));
      }
      config.pct_k = static_cast<std::uint32_t>(k);
    } else if (head == "horizon") {
      std::uint64_t h = 0;
      if (!parse_u64(arg, &h) || h == 0) {
        return parse_error(error, common::format("horizon: not a positive number: '{}'", arg));
      }
      config.pct_horizon = static_cast<std::uint32_t>(h);
    } else {
      return parse_error(error, common::format("unknown clause '{}'", clause));
    }
    if (end == text.size()) {
      break;
    }
  }
  if (config.pct_k > config.pct_horizon) {
    return parse_error(error, "pct must be <= horizon");
  }
  *out = config;
  return true;
}

std::string Divergence::to_string() const {
  return common::format("actor {} {} decision {}: trace recorded {} candidates, run asked for {}",
                        actor.to_string(), schedsim::to_string(site), seq, expected_candidates,
                        got_candidates);
}

namespace detail {

constinit thread_local Controller* t_current_controller = nullptr;
constinit std::atomic<bool> g_process_armed{false};

namespace {
const std::size_t kControllerSlot = common::ThreadContext::register_slot(
    [] { return static_cast<void*>(t_current_controller); },
    [](void* value) { t_current_controller = static_cast<Controller*>(value); });
}  // namespace

}  // namespace detail

Controller& Controller::instance() {
  Controller* current = detail::t_current_controller;
  return current != nullptr ? *current : global();
}

Controller& Controller::global() {
  static Controller controller;
  return controller;
}

Controller::Scope::Scope(Controller* controller) : previous_(detail::t_current_controller) {
  detail::t_current_controller = controller;
  (void)detail::kControllerSlot;
}

Controller::Scope::~Scope() { detail::t_current_controller = previous_; }

void Controller::set_armed(bool armed) {
  armed_.store(armed, std::memory_order_relaxed);
  if (this == &global()) {
    detail::g_process_armed.store(armed, std::memory_order_relaxed);
  }
}

int Controller::choose(Site site, const ActorId& actor, int candidates, int default_index) {
  if (candidates <= 1) {
    return 0;
  }
  if (default_index < 0 || default_index >= candidates) {
    default_index = 0;
  }
  if (!armed()) {
    return default_index;
  }
  int chosen = default_index;
  std::uint64_t seq = 0;
  const std::uint64_t key = stream_key(actor, site);
  {
    std::lock_guard lock(mutex_);
    StreamState& st = streams_[key];
    seq = st.seq++;
    ++stats_.decisions;
    switch (config_.mode) {
      case Mode::kFree:
      case Mode::kDpor:  // a single dpor run is free + record; the explorer
                         // owns the multi-run loop and installs prefixes
        break;
      case Mode::kSeed: {
        // Deterministic per (seed, actor, site, seq): the answer a stream
        // gets does not depend on how OS timing interleaved other actors'
        // queries, so a seed names one perturbation, not a lottery.
        common::SplitMix64 rng(config_.seed ^ (key * 0x9e3779b97f4a7c15ULL) ^
                               (seq * 0xd1b54a32d192ed03ULL));
        if (rng.next_below(config_.pct_horizon) < config_.pct_k) {
          const int other = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
              candidates - 1)));
          chosen = other >= default_index ? other + 1 : other;
          ++stats_.preemptions;
        }
        break;
      }
      case Mode::kPrefix:  // prefix pinning replays its pinned slice and
                           // records the suffix as tolerated underruns
      case Mode::kReplay: {
        if (st.diverged) {
          break;
        }
        const auto it = replay_streams_.find(key);
        const std::vector<std::size_t>* slice = it != replay_streams_.end() ? &it->second
                                                                            : nullptr;
        if (slice == nullptr || st.cursor >= slice->size()) {
          // Ran past the recording: timing-dependent entry into a choice
          // point (e.g. a wait whose predicate was already true at record
          // time). Counted, not a divergence — the trace still pins every
          // decision it covers.
          ++stats_.underruns;
          sched_counters().underruns->add(1);
          break;
        }
        const TraceEntry& entry = replay_.entries[(*slice)[st.cursor]];
        if (entry.candidates != candidates) {
          st.diverged = true;
          ++stats_.divergences;
          if (!divergence_.has_value()) {
            divergence_ = Divergence{actor, entry.seq, site, entry.candidates, candidates};
            sched_counters().divergences->add(1);
            obs::emit_diagnostic({"sched.divergence", obs::Severity::kError, actor.rank,
                                  divergence_->to_string(), 0});
          }
          break;
        }
        ++st.cursor;
        ++stats_.replayed;
        chosen = entry.chosen < candidates ? entry.chosen : default_index;
        break;
      }
    }
    if (config_.record) {
      recorded_.push_back({actor, seq, site, candidates, chosen});
    }
  }
  if (GraphRecorder::enabled()) {
    GraphRecorder::instance().record_decision(actor, site, seq, candidates, chosen);
  }
  sched_counters().decisions->add(1);
  if (obs::tracing_enabled()) {
    obs::emit_instant(actor.rank, obs::EventKind::kSchedule, actor_track(actor), to_string(site),
                      (seq << 16) | (static_cast<std::uint64_t>(candidates) << 8) |
                          static_cast<std::uint64_t>(chosen));
  }
  return chosen;
}

void Controller::configure(const Config& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  if (config_.mode == Mode::kDpor) {
    config_.record = true;  // every explored run must yield its trace
  }
  replay_ = {};
  replay_streams_.clear();
  reset_run_state_locked();
  set_armed(config_.mode != Mode::kFree || config_.record || config_.graph);
}

void Controller::configure_prefix(std::vector<TraceEntry> prefix) {
  std::lock_guard lock(mutex_);
  const bool graph = config_.graph;
  const std::string graph_path = config_.graph_path;
  config_ = {};
  config_.mode = Mode::kPrefix;
  config_.record = true;
  config_.graph = graph;
  config_.graph_path = graph_path;
  replay_ = {};
  replay_.entries = std::move(prefix);
  replay_streams_.clear();
  for (std::size_t i = 0; i < replay_.entries.size(); ++i) {
    replay_streams_[stream_key(replay_.entries[i].actor, replay_.entries[i].site)].push_back(i);
  }
  reset_run_state_locked();
  set_armed(true);
}

bool Controller::configure_replay_text(const std::string& trace_text, std::string* error,
                                       bool record) {
  ScheduleTrace parsed;
  if (!parse_trace(trace_text, &parsed, error)) {
    return false;
  }
  std::lock_guard lock(mutex_);
  config_ = {};
  config_.mode = Mode::kReplay;
  config_.record = record;
  replay_ = std::move(parsed);
  replay_streams_.clear();
  for (std::size_t i = 0; i < replay_.entries.size(); ++i) {
    replay_streams_[stream_key(replay_.entries[i].actor, replay_.entries[i].site)].push_back(i);
  }
  reset_run_state_locked();
  set_armed(true);
  return true;
}

bool Controller::load_env(std::string* error) {
  const char* env = std::getenv("CUSAN_SCHEDULE");
  if (env == nullptr || *env == '\0') {
    return true;
  }
  Config config;
  if (!parse_schedule(env, &config, error)) {
    return false;
  }
  if (config.mode == Mode::kReplay) {
    std::string text;
    if (!read_file(config.replay_path, &text)) {
      return parse_error(error, common::format("replay: cannot read '{}'", config.replay_path));
    }
    const std::string record_path = config.record_path;
    const bool record = config.record;
    if (!configure_replay_text(text, error, record)) {
      return false;
    }
    if (record) {
      std::lock_guard lock(mutex_);
      config_.record_path = record_path;
    }
    return true;
  }
  configure(config);
  return true;
}

void Controller::clear() {
  std::lock_guard lock(mutex_);
  config_ = {};
  replay_ = {};
  replay_streams_.clear();
  reset_run_state_locked();
  set_armed(false);
}

void Controller::begin_session() {
  if (!armed()) {
    return;
  }
  std::lock_guard lock(mutex_);
  reset_run_state_locked();
}

void Controller::end_session() {
  if (!armed()) {
    return;
  }
  std::lock_guard lock(mutex_);
  flush_record_locked();
}

void Controller::reset_run_state_locked() {
  streams_.clear();
  recorded_.clear();
  divergence_.reset();
  stats_ = {};
}

void Controller::flush_record_locked() {
  if (!config_.record || config_.record_path.empty()) {
    return;
  }
  ScheduleTrace trace;
  trace.strategy = strategy_string_locked();
  trace.entries = recorded_;
  std::string error;
  if (!obs::write_file(config_.record_path, serialize_trace(trace), &error)) {
    std::fprintf(stderr, "cusan: schedule trace export failed: %s\n", error.c_str());
  }
}

bool Controller::absorb_child(const std::string& trace_text, const Stats& child_stats,
                              const std::optional<Divergence>& child_divergence,
                              std::string* error) {
  ScheduleTrace trace;
  if (!trace_text.empty() && !parse_trace(trace_text, &trace, error)) {
    return false;
  }
  std::lock_guard lock(mutex_);
  recorded_.insert(recorded_.end(), trace.entries.begin(), trace.entries.end());
  stats_.decisions += child_stats.decisions;
  stats_.preemptions += child_stats.preemptions;
  stats_.replayed += child_stats.replayed;
  stats_.underruns += child_stats.underruns;
  stats_.divergences += child_stats.divergences;
  if (!divergence_.has_value() && child_divergence.has_value()) {
    divergence_ = child_divergence;
  }
  return true;
}

Config Controller::config() const {
  std::lock_guard lock(mutex_);
  return config_;
}

std::string Controller::strategy_string() const {
  std::lock_guard lock(mutex_);
  return strategy_string_locked();
}

std::string Controller::strategy_string_locked() const {
  std::string out;
  switch (config_.mode) {
    case Mode::kFree:
      out = "free";
      break;
    case Mode::kSeed:
      out = common::format("seed:{};pct:{};horizon:{}", config_.seed, config_.pct_k,
                           config_.pct_horizon);
      break;
    case Mode::kReplay:
      out = config_.replay_path.empty() ? "replay" : "replay:" + config_.replay_path;
      break;
    case Mode::kPrefix:
      out = common::format("prefix:{}", replay_.entries.size());
      break;
    case Mode::kDpor:
      out = config_.bound != 0 ? common::format("dpor;bound:{}", config_.bound) : "dpor";
      break;
  }
  if (config_.record) {
    out += config_.record_path.empty() ? ";record" : ";record:" + config_.record_path;
  }
  if (config_.graph) {
    out += config_.graph_path.empty() ? ";graph" : ";graph:" + config_.graph_path;
  }
  return out;
}

std::string Controller::trace_text() const {
  std::lock_guard lock(mutex_);
  ScheduleTrace trace;
  trace.strategy = strategy_string_locked();
  trace.entries = recorded_;
  return serialize_trace(trace);
}

std::string Controller::take_trace() {
  std::lock_guard lock(mutex_);
  ScheduleTrace trace;
  trace.strategy = strategy_string_locked();
  trace.entries = std::move(recorded_);
  recorded_.clear();
  return serialize_trace(trace);
}

std::vector<TraceEntry> Controller::take_recorded() {
  std::lock_guard lock(mutex_);
  std::vector<TraceEntry> out = std::move(recorded_);
  recorded_.clear();
  return out;
}

std::optional<Divergence> Controller::divergence() const {
  std::lock_guard lock(mutex_);
  return divergence_;
}

Stats Controller::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace schedsim
