// Serialized schedule-decision traces: the record/replay interchange format
// of the schedule exploration engine (controller.hpp). A trace is a line-
// oriented text document, one `d` line per decision, grouped logically into
// per-(actor, site) streams: replay matches each stream's decisions against
// its own recording, so neither the physical interleaving of lines (OS
// thread timing at record time) nor timing-dependent *skips* of one site
// (e.g. a wait whose predicate was already true, so its pre-park decision
// never fired) can shift another site's decisions out of alignment.
//
//   # cusan-schedule-trace v1
//   # strategy seed:7
//   d <rank>:<kind><local> <seq> <site> <candidates> <chosen>
//
// `<kind>` is `h` (the rank's host/MPI thread) or `s` (a cusim stream
// worker, `<local>` = device ordinal * 4096 + stream id); `<seq>` is the
// (actor, site) stream's own decision counter, starting at 0. A tampered or
// stale trace is caught at replay time: the first stream decision whose
// recorded candidate count disagrees with the live query is latched and
// reported as a divergence (controller.hpp), never silently skipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace schedsim {

/// A nondeterministic choice point routed through the ScheduleController.
enum class Site : std::uint8_t {
  kStreamOp,      ///< cusim stream worker: run the head op now or defer once
  kMatchRecv,     ///< mpisim ANY_SOURCE recv: which source channel matches
  kWakeOrder,     ///< mpisim WaiterHub broadcast: slot wake permutation
  kPreParkYield,  ///< mpisim blocked_wait: yields before parking on the slot
  kWaitany,       ///< MPI_Waitany: which completed request is returned
  kWaitallOrder,  ///< MPI_Waitall: request completion/fiber-join order
};

[[nodiscard]] const char* to_string(Site site);
/// Inverse of to_string; false if `name` is not a known site.
[[nodiscard]] bool site_from_string(const std::string& name, Site* out);

/// The thread asking for a decision. Rank -1 is unattributed (raw cusim /
/// mpisim unit tests outside a capi session).
struct ActorId {
  int rank{-1};
  char kind{'h'};          ///< 'h' host thread, 's' stream worker
  std::uint32_t local{0};  ///< stream workers: ordinal * 4096 + stream id

  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank + 1)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 32) |
           static_cast<std::uint64_t>(local);
  }
  [[nodiscard]] std::string to_string() const;
};

/// One recorded decision.
struct TraceEntry {
  ActorId actor;
  std::uint64_t seq{0};  ///< (actor, site)-stream-local decision index
  Site site{Site::kStreamOp};
  int candidates{1};
  int chosen{0};
};

/// Key of the (actor, site) decision stream an entry belongs to. The actor
/// key occupies bits [3, 44); the site index fits in the low 3 bits.
[[nodiscard]] inline std::uint64_t stream_key(const ActorId& actor, Site site) {
  return (actor.key() << 3) | static_cast<std::uint64_t>(site);
}

/// Parsed trace plus its header metadata.
struct ScheduleTrace {
  std::string strategy;  ///< "# strategy ..." header, informational
  std::vector<TraceEntry> entries;
};

/// Serialize to the v1 text format.
[[nodiscard]] std::string serialize_trace(const ScheduleTrace& trace);

/// Parse the v1 text format. Returns false (with *error set, if given) on a
/// malformed document: bad magic, unknown site, non-monotonic per-actor seq,
/// chosen outside [0, candidates).
[[nodiscard]] bool parse_trace(const std::string& text, ScheduleTrace* out,
                               std::string* error = nullptr);

}  // namespace schedsim
