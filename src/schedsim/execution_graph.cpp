#include "schedsim/execution_graph.hpp"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <utility>

#include "common/format.hpp"
#include "common/thread_context.hpp"

namespace schedsim {

namespace {

constexpr const char* kMagic = "# cusan-execution-graph v1";

/// Hard cap on recorded nodes: a runaway run stops growing the graph instead
/// of exhausting memory. The analysis cap (GraphAnalysis max_nodes) kicks in
/// far earlier, so a truncated graph only ever means "prune less".
constexpr std::size_t kMaxRecordedNodes = 1u << 20;

/// Decision seqs addressable by the analysis index. Streams longer than this
/// fall back to "racing" (conservative).
constexpr std::uint64_t kSeqBits = 13;

[[nodiscard]] char kind_char(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDecision:
      return 'd';
    case NodeKind::kRelease:
      return 'r';
    case NodeKind::kAcquire:
      return 'a';
  }
  return '?';
}

[[nodiscard]] bool fail(std::string* error, std::size_t line_no, const std::string& message) {
  if (error != nullptr) {
    *error = common::format("line {}: {}", line_no, message);
  }
  return false;
}

/// Same `<rank>:<kind>[<local>]` grammar as the trace format.
[[nodiscard]] bool parse_actor_token(const std::string& token, ActorId* out) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos || colon + 1 >= token.size()) {
    return false;
  }
  char* end = nullptr;
  const long rank = std::strtol(token.c_str(), &end, 10);
  if (end != token.c_str() + colon) {
    return false;
  }
  const char kind = token[colon + 1];
  if (kind != 'h' && kind != 's') {
    return false;
  }
  unsigned long local = 0;
  if (colon + 2 < token.size()) {
    local = std::strtoul(token.c_str() + colon + 2, &end, 10);
    if (*end != '\0') {
      return false;
    }
  }
  out->rank = static_cast<int>(rank);
  out->kind = kind;
  out->local = static_cast<std::uint32_t>(local);
  return true;
}

}  // namespace

std::string serialize_graph(const ExecutionGraph& graph) {
  std::string out = kMagic;
  out += '\n';
  if (!graph.strategy.empty()) {
    out += "# strategy ";
    out += graph.strategy;
    out += '\n';
  }
  for (const GraphNode& n : graph.nodes) {
    switch (n.kind) {
      case NodeKind::kDecision:
        out += common::format("n {} d {} {} {} {} {}\n", n.id, n.actor.to_string(),
                              to_string(n.site), n.seq, n.candidates, n.chosen);
        break;
      case NodeKind::kRelease:
      case NodeKind::kAcquire: {
        char key_hex[24];
        std::snprintf(key_hex, sizeof(key_hex), "%llx",
                      static_cast<unsigned long long>(n.key));
        out += common::format("n {} {} {} {} {}\n", n.id,
                              std::string(1, kind_char(n.kind)), n.actor.to_string(), n.ctx,
                              key_hex);
        break;
      }
    }
  }
  for (const GraphEdge& e : graph.edges) {
    out += common::format("e {} {} {}\n", e.from, e.to,
                          e.kind == GraphEdge::Kind::kProgram ? "po" : "sync");
  }
  return out;
}

bool parse_graph(const std::string& text, ExecutionGraph* out, std::string* error) {
  out->strategy.clear();
  out->nodes.clear();
  out->edges.clear();
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool have_magic = false;
  std::unordered_map<std::uint32_t, bool> seen_ids;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (!have_magic) {
      if (line != kMagic) {
        return fail(error, line_no, "missing 'cusan-execution-graph v1' header");
      }
      have_magic = true;
      continue;
    }
    if (line.rfind("# strategy ", 0) == 0) {
      out->strategy = line.substr(11);
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "n") {
      GraphNode node;
      std::string kind_token;
      std::string actor_token;
      if (!(fields >> node.id >> kind_token >> actor_token) || kind_token.size() != 1) {
        return fail(error, line_no, "malformed node line");
      }
      if (!parse_actor_token(actor_token, &node.actor)) {
        return fail(error, line_no, common::format("bad actor '{}'", actor_token));
      }
      if (seen_ids.contains(node.id)) {
        return fail(error, line_no, common::format("duplicate node id {}", node.id));
      }
      seen_ids.emplace(node.id, true);
      switch (kind_token[0]) {
        case 'd': {
          node.kind = NodeKind::kDecision;
          std::string site_token;
          long long seq = -1;
          if (!(fields >> site_token >> seq >> node.candidates >> node.chosen) || seq < 0) {
            return fail(error, line_no, "malformed decision node");
          }
          if (!site_from_string(site_token, &node.site)) {
            return fail(error, line_no, common::format("unknown site '{}'", site_token));
          }
          if (node.candidates < 1 || node.chosen < 0 || node.chosen >= node.candidates) {
            return fail(error, line_no, "chosen outside [0, candidates)");
          }
          node.seq = static_cast<std::uint64_t>(seq);
          break;
        }
        case 'r':
        case 'a': {
          node.kind = kind_token[0] == 'r' ? NodeKind::kRelease : NodeKind::kAcquire;
          std::string key_hex;
          if (!(fields >> node.ctx >> key_hex) || key_hex.empty()) {
            return fail(error, line_no, "malformed sync node");
          }
          char* end = nullptr;
          node.key = std::strtoull(key_hex.c_str(), &end, 16);
          if (*end != '\0') {
            return fail(error, line_no, common::format("bad sync key '{}'", key_hex));
          }
          break;
        }
        default:
          return fail(error, line_no, common::format("unknown node kind '{}'", kind_token));
      }
      std::string extra;
      if (fields >> extra) {
        return fail(error, line_no, "trailing fields on node line");
      }
      out->nodes.push_back(node);
    } else if (tag == "e") {
      GraphEdge edge;
      std::string kind_token;
      if (!(fields >> edge.from >> edge.to >> kind_token)) {
        return fail(error, line_no, "malformed edge line");
      }
      if (kind_token == "po") {
        edge.kind = GraphEdge::Kind::kProgram;
      } else if (kind_token == "sync") {
        edge.kind = GraphEdge::Kind::kSync;
      } else {
        return fail(error, line_no, common::format("unknown edge kind '{}'", kind_token));
      }
      out->edges.push_back(edge);
    } else {
      return fail(error, line_no, common::format("unknown line tag '{}'", tag));
    }
  }
  if (!have_magic) {
    return fail(error, line_no, "empty document (missing header)");
  }
  return true;
}

bool validate_graph(const ExecutionGraph& graph, std::string* error) {
  std::unordered_map<std::uint32_t, std::size_t> index;
  index.reserve(graph.nodes.size());
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    index.emplace(graph.nodes[i].id, i);
  }
  std::vector<std::size_t> indegree(graph.nodes.size(), 0);
  std::vector<std::vector<std::size_t>> out_edges(graph.nodes.size());
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const GraphEdge& e = graph.edges[i];
    const auto from_it = index.find(e.from);
    const auto to_it = index.find(e.to);
    if (from_it == index.end() || to_it == index.end()) {
      if (error != nullptr) {
        *error = common::format("edge {} ({} -> {}): dangling endpoint", i, e.from, e.to);
      }
      return false;
    }
    if (e.kind == GraphEdge::Kind::kSync) {
      if (graph.nodes[from_it->second].kind != NodeKind::kRelease ||
          graph.nodes[to_it->second].kind != NodeKind::kAcquire) {
        if (error != nullptr) {
          *error = common::format("edge {} ({} -> {}): sync edge must run release -> acquire",
                                  i, e.from, e.to);
        }
        return false;
      }
    }
    out_edges[from_it->second].push_back(to_it->second);
    ++indegree[to_it->second];
  }
  // Kahn toposort: anything left with an in-edge sits on a cycle.
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    ++visited;
    for (const std::size_t j : out_edges[i]) {
      if (--indegree[j] == 0) {
        ready.push_back(j);
      }
    }
  }
  if (visited != graph.nodes.size()) {
    if (error != nullptr) {
      *error = common::format("graph has a cycle ({} of {} nodes reachable from sources)",
                              visited, graph.nodes.size());
    }
    return false;
  }
  return true;
}

// -- GraphAnalysis --------------------------------------------------------------------

namespace {
[[nodiscard]] bool analysis_key(std::uint64_t stream, std::uint64_t seq, std::uint64_t* out) {
  if (seq >= (1ull << kSeqBits)) {
    return false;
  }
  *out = (stream << kSeqBits) | seq;
  return true;
}
}  // namespace

GraphAnalysis::GraphAnalysis(const ExecutionGraph& graph, std::size_t max_nodes)
    : graph_(&graph) {
  const std::size_t n = graph.nodes.size();
  if (n == 0 || n > max_nodes || !validate_graph(graph)) {
    return;
  }
  std::unordered_map<std::uint32_t, std::uint32_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    index.emplace(graph.nodes[i].id, static_cast<std::uint32_t>(i));
  }
  std::vector<std::vector<std::uint32_t>> out_edges(n);
  std::vector<std::size_t> indegree(n, 0);
  for (const GraphEdge& e : graph.edges) {
    const std::uint32_t from = index.at(e.from);
    const std::uint32_t to = index.at(e.to);
    out_edges[from].push_back(to);
    ++indegree[to];
  }
  words_ = (n + 63) / 64;
  ancestors_.assign(n * words_, 0);
  std::deque<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  while (!ready.empty()) {
    const std::uint32_t i = ready.front();
    ready.pop_front();
    ancestors_[static_cast<std::size_t>(i) * words_ + i / 64] |= 1ull << (i % 64);
    for (const std::uint32_t j : out_edges[i]) {
      std::uint64_t* dst = ancestors_.data() + static_cast<std::size_t>(j) * words_;
      const std::uint64_t* src = ancestors_.data() + static_cast<std::size_t>(i) * words_;
      for (std::size_t w = 0; w < words_; ++w) {
        dst[w] |= src[w];
      }
      if (--indegree[j] == 0) {
        ready.push_back(j);
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const GraphNode& node = graph.nodes[i];
    if (node.kind != NodeKind::kDecision || node.candidates <= 1) {
      continue;
    }
    decision_nodes_.push_back(i);
    std::uint64_t key = 0;
    if (analysis_key(stream_key(node.actor, node.site), node.seq, &key)) {
      decision_index_.emplace(key, i);
    }
  }
  usable_ = true;
}

bool GraphAnalysis::reaches(std::uint32_t from, std::uint32_t to) const {
  return (ancestors_[static_cast<std::size_t>(to) * words_ + from / 64] &
          (1ull << (from % 64))) != 0;
}

bool GraphAnalysis::has_decision(std::uint64_t stream, std::uint64_t seq) const {
  std::uint64_t key = 0;
  return usable_ && analysis_key(stream, seq, &key) && decision_index_.contains(key);
}

bool GraphAnalysis::decision_races(std::uint64_t stream, std::uint64_t seq) const {
  std::uint64_t key = 0;
  if (!usable_ || !analysis_key(stream, seq, &key)) {
    return true;
  }
  const auto it = decision_index_.find(key);
  if (it == decision_index_.end()) {
    return true;
  }
  const std::uint32_t i = it->second;
  const GraphNode& a = graph_->nodes[i];
  const std::uint64_t lane = a.actor.key();
  for (const std::uint32_t j : decision_nodes_) {
    const GraphNode& b = graph_->nodes[j];
    if (j == i || b.actor.key() == lane) {
      continue;
    }
    // Cross-rank stream-op pairs are not a conflict: each orders its own
    // rank's device timeline (cusim devices are per-rank), and the ranks
    // only interact through MPI, whose nondeterminism surfaces as separate
    // host-lane decision sites (matching, wake order, wait family) that
    // stay conflict-eligible here.
    if (a.site == Site::kStreamOp && b.site == Site::kStreamOp &&
        a.actor.rank != b.actor.rank && a.actor.rank >= 0 && b.actor.rank >= 0) {
      continue;
    }
    if (!reaches(i, j) && !reaches(j, i)) {
      return true;  // concurrent conflicting decision on another lane
    }
  }
  return false;
}

// -- GraphRecorder --------------------------------------------------------------------

namespace detail {

constinit thread_local GraphRecorder* t_current_recorder = nullptr;
constinit std::atomic<bool> g_graph_armed{false};

namespace {
const std::size_t kRecorderSlot = common::ThreadContext::register_slot(
    [] { return static_cast<void*>(t_current_recorder); },
    [](void* value) { t_current_recorder = static_cast<GraphRecorder*>(value); });
}  // namespace

}  // namespace detail

GraphRecorder& GraphRecorder::instance() {
  GraphRecorder* current = detail::t_current_recorder;
  return current != nullptr ? *current : global();
}

GraphRecorder& GraphRecorder::global() {
  static GraphRecorder recorder;
  return recorder;
}

GraphRecorder::Scope::Scope(GraphRecorder* recorder) : previous_(detail::t_current_recorder) {
  detail::t_current_recorder = recorder;
  (void)detail::kRecorderSlot;
}

GraphRecorder::Scope::~Scope() { detail::t_current_recorder = previous_; }

void GraphRecorder::arm(bool on) {
  armed_.store(on, std::memory_order_relaxed);
  if (this == &global()) {
    detail::g_graph_armed.store(on, std::memory_order_relaxed);
  }
}

void GraphRecorder::begin_run() {
  std::lock_guard lock(mutex_);
  graph_ = {};
  lane_last_.clear();
  releases_.clear();
}

std::uint32_t GraphRecorder::append_node_locked(GraphNode node) {
  const auto id = static_cast<std::uint32_t>(graph_.nodes.size());
  node.id = id;
  std::uint32_t& last = lane_last_[node.actor.key()];
  if (last != 0) {
    graph_.edges.push_back({last - 1, id, GraphEdge::Kind::kProgram});
  }
  last = id + 1;
  graph_.nodes.push_back(node);
  return id;
}

void GraphRecorder::record_decision(const ActorId& actor, Site site, std::uint64_t seq,
                                    int candidates, int chosen) {
  std::lock_guard lock(mutex_);
  if (graph_.nodes.size() >= kMaxRecordedNodes) {
    return;
  }
  GraphNode node;
  node.kind = NodeKind::kDecision;
  node.actor = actor;
  node.site = site;
  node.seq = seq;
  node.candidates = candidates;
  node.chosen = chosen;
  append_node_locked(node);
}

void GraphRecorder::record_release(int rank, std::uint32_t ctx, const void* key) {
  std::lock_guard lock(mutex_);
  if (graph_.nodes.size() >= kMaxRecordedNodes) {
    return;
  }
  GraphNode node;
  node.kind = NodeKind::kRelease;
  node.actor = ActorId{rank, 'h', 0};
  node.ctx = ctx;
  node.key = reinterpret_cast<std::uintptr_t>(key);
  const std::uint32_t id = append_node_locked(node);
  releases_[node.key].push_back(id);
}

void GraphRecorder::record_acquire(int rank, std::uint32_t ctx, const void* key) {
  std::lock_guard lock(mutex_);
  if (graph_.nodes.size() >= kMaxRecordedNodes) {
    return;
  }
  GraphNode node;
  node.kind = NodeKind::kAcquire;
  node.actor = ActorId{rank, 'h', 0};
  node.ctx = ctx;
  node.key = reinterpret_cast<std::uintptr_t>(key);
  const std::uint32_t id = append_node_locked(node);
  // An acquire joins the sync object's accumulated clock, i.e. it
  // happens-after *every* prior release of the key, not just the latest.
  const auto it = releases_.find(node.key);
  if (it != releases_.end()) {
    for (const std::uint32_t rel : it->second) {
      graph_.edges.push_back({rel, id, GraphEdge::Kind::kSync});
    }
  }
}

void GraphRecorder::record_key_retire(const void* key) {
  std::lock_guard lock(mutex_);
  releases_.erase(reinterpret_cast<std::uintptr_t>(key));
}

void GraphRecorder::set_strategy(std::string strategy) {
  std::lock_guard lock(mutex_);
  graph_.strategy = std::move(strategy);
}

ExecutionGraph GraphRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  return graph_;
}

ExecutionGraph GraphRecorder::take_graph() {
  std::lock_guard lock(mutex_);
  ExecutionGraph out = std::move(graph_);
  graph_ = {};
  lane_last_.clear();
  releases_.clear();
  return out;
}

std::size_t GraphRecorder::node_count() const {
  std::lock_guard lock(mutex_);
  return graph_.nodes.size();
}

}  // namespace schedsim
