#include "schedsim/explorer.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/clock.hpp"
#include "common/format.hpp"
#include "obs/metrics.hpp"
#include "schedsim/controller.hpp"

namespace schedsim {

namespace {

/// Sites whose decision picks a *value* (which source matched, which request
/// returned, which completion order) rather than a commutation of otherwise
/// independent steps. Flipping one changes downstream semantics even when
/// the decision is happens-before-ordered with every other lane, so the HB
/// prune never applies to them.
[[nodiscard]] bool is_value_site(Site site) {
  return site == Site::kMatchRecv || site == Site::kWaitany || site == Site::kWaitallOrder;
}

}  // namespace

Explorer::Explorer(ExplorerOptions options) : options_(options) {
  if (options_.bound == 0) {
    options_.bound = ExplorerOptions::kDefaultBound;
  }
}

std::string Explorer::signature(const std::vector<TraceEntry>& entries) {
  std::vector<const TraceEntry*> sorted;
  sorted.reserve(entries.size());
  for (const TraceEntry& e : entries) {
    sorted.push_back(&e);
  }
  std::stable_sort(sorted.begin(), sorted.end(), [](const TraceEntry* a, const TraceEntry* b) {
    const std::uint64_t ka = stream_key(a->actor, a->site);
    const std::uint64_t kb = stream_key(b->actor, b->site);
    return ka != kb ? ka < kb : a->seq < b->seq;
  });
  std::string out;
  out.reserve(sorted.size() * 12);
  for (const TraceEntry* e : sorted) {
    out += common::format("{}.{}={};", stream_key(e->actor, e->site), e->seq, e->chosen);
  }
  return out;
}

std::vector<Execution> Explorer::explore(Controller& controller, const RunFn& run) {
  stats_ = {};
  std::vector<Execution> executions;
  // Two-tier FIFO frontier: structural flips (stream ops, matching, wait
  // orders) explore breadth-first before any timing-only pre-park flip, so
  // a tight bound spends its budget where verdicts can change.
  std::deque<std::vector<TraceEntry>> frontier;
  std::deque<std::vector<TraceEntry>> deferred;
  std::unordered_set<std::string> sleep;     ///< prefixes already scheduled
  std::unordered_set<std::string> seen;      ///< full-run signatures executed
  frontier.push_back({});
  sleep.insert(signature({}));

  GraphRecorder& recorder = GraphRecorder::instance();
  while (!frontier.empty() || !deferred.empty()) {
    if (executions.size() >= options_.bound) {
      stats_.bound_hit = true;
      break;
    }
    std::vector<TraceEntry> prefix;
    if (!frontier.empty()) {
      prefix = std::move(frontier.front());
      frontier.pop_front();
    } else {
      prefix = std::move(deferred.front());
      deferred.pop_front();
    }

    controller.configure_prefix(prefix);
    if (options_.use_graph) {
      recorder.begin_run();
      recorder.arm(true);
    }
    const std::uint64_t t0 = common::now_ns();
    const std::size_t races = run();
    const std::uint64_t t1 = common::now_ns();
    if (options_.use_graph) {
      recorder.arm(false);
    }

    Execution exec;
    exec.index = executions.size();
    exec.pinned = prefix.size();
    exec.trace = controller.take_recorded();
    exec.races = races;
    exec.diverged = controller.divergence().has_value();
    exec.wall_ms = static_cast<double>(t1 - t0) / 1e6;

    ExecutionGraph graph;
    if (options_.use_graph) {
      graph = recorder.take_graph();
      graph.strategy = common::format("dpor execution {}", exec.index);
      stats_.graph_nodes += graph.nodes.size();
      stats_.graph_edges += graph.edges.size();
      if (options_.collect_graphs) {
        exec.graph_text = serialize_graph(graph);
      }
    }

    ++stats_.executions;
    if (!seen.insert(signature(exec.trace)).second) {
      ++stats_.redundant;
    }

    // Backtrack points: every alternative of every branchable, un-pinned,
    // not-provably-ordered decision extends the frontier.
    std::set<std::pair<std::uint64_t, std::uint64_t>> pinned;
    for (const TraceEntry& e : prefix) {
      pinned.emplace(stream_key(e.actor, e.site), e.seq);
    }
    GraphAnalysis analysis(graph);
    for (std::size_t i = 0; i < exec.trace.size(); ++i) {
      const TraceEntry& e = exec.trace[i];
      if (e.candidates <= 1) {
        continue;
      }
      const std::uint64_t stream = stream_key(e.actor, e.site);
      if (pinned.contains({stream, e.seq})) {
        continue;
      }
      if (!is_value_site(e.site) && options_.use_graph && analysis.usable() &&
          analysis.has_decision(stream, e.seq) && !analysis.decision_races(stream, e.seq)) {
        ++stats_.hb_prunes;
        continue;
      }
      for (int alt = 0; alt < e.candidates; ++alt) {
        if (alt == e.chosen) {
          continue;
        }
        std::vector<TraceEntry> next(exec.trace.begin(),
                                     exec.trace.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        next.back().chosen = alt;
        if (!sleep.insert(signature(next)).second) {
          ++stats_.sleep_prunes;
          continue;
        }
        ++stats_.backtrack_points;
        if (e.site == Site::kPreParkYield) {
          deferred.push_back(std::move(next));
        } else {
          frontier.push_back(std::move(next));
        }
      }
    }
    stats_.frontier_peak =
        std::max<std::uint64_t>(stats_.frontier_peak, frontier.size() + deferred.size());
    executions.push_back(std::move(exec));
  }
  controller.clear();
  return executions;
}

void Explorer::publish_metrics() const {
  obs::metric("sched.dpor_executions").add(stats_.executions);
  obs::metric("sched.dpor_backtracks").add(stats_.backtrack_points);
  obs::metric("sched.dpor_sleep_prunes").add(stats_.sleep_prunes);
  obs::metric("sched.dpor_hb_prunes").add(stats_.hb_prunes);
  obs::metric("sched.dpor_redundant").add(stats_.redundant);
  obs::metric("sched.dpor_graph_nodes").add(stats_.graph_nodes);
  obs::metric("sched.dpor_graph_edges").add(stats_.graph_edges);
}

}  // namespace schedsim
