// The central schedule-exploration controller: every nondeterministic choice
// point in the stack — cusim stream-worker op selection, mpisim wildcard
// matching / wakeup order / pre-park yields, and the MPI wait family's
// request-fiber completion order — routes its decision through choose() as a
// numbered (site, candidates) query and obeys the answer. Strategies
// (CUSAN_SCHEDULE):
//
//   free             today's behavior; the controller stays disarmed and
//                    each choice point costs one relaxed atomic load
//   seed:<n>         PCT-style randomized exploration: actors get hashed
//                    priorities from the seed and an expected `pct` choices
//                    per `horizon` decisions are preempted away from the
//                    default (clauses `pct:<k>` / `horizon:<h>` tune it);
//                    deterministic per (seed, actor, seq), so the choice an
//                    actor sees does not depend on OS thread timing
//   replay:<path>    answer every query from its (actor, site) stream of a
//                    recorded trace; the first stream decision whose live
//                    candidate count disagrees with the recording is
//                    latched and reported as a divergence
//   record:<path>    compose with any of the above to write the decision
//                    trace after each session — any race a sweep finds
//                    becomes a one-command deterministic reproducer
//   dpor             systematic exploration (explorer.hpp): harnesses drive
//                    a source-DPOR frontier of pinned prefixes over repeated
//                    runs; a single session under this mode runs free with
//                    recording on (the explorer owns the multi-run loop).
//                    `bound:<k>` caps executed schedules per scenario
//   graph[:<path>]   compose: record the execution graph (execution_graph
//                    .hpp) during the run; with a path, serialize it after
//                    each session next to the decision trace
//
// Cost model (the bench guard asserts it): disarmed, armed() is a single
// relaxed atomic load and choose() is never reached. Armed, decisions take a
// mutex — exploration trades speed for control, like faultsim's faulted runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "schedsim/trace.hpp"

namespace schedsim {

enum class Mode : std::uint8_t {
  kFree,    ///< default choices (armed only if recording)
  kSeed,    ///< PCT-style randomized preemption
  kReplay,  ///< answer from a recorded trace
  kPrefix,  ///< replay a pinned prefix, record the free suffix (explorer)
  kDpor,    ///< explorer-driven systematic exploration (free + record per run)
};

struct Config {
  Mode mode{Mode::kFree};
  std::uint64_t seed{0};
  /// Expected preemptions per `horizon` decisions (PCT's k).
  std::uint32_t pct_k{16};
  std::uint32_t pct_horizon{128};
  bool record{false};
  std::string record_path;  ///< empty: in-memory only (take_trace)
  std::string replay_path;  ///< kReplay via env: file to load
  /// kDpor: cap on executed schedules per exploration (0 = explorer default).
  std::uint32_t bound{0};
  bool graph{false};        ///< record the execution graph during the run
  std::string graph_path;   ///< empty: in-memory only (GraphRecorder)
};

/// Parse the CUSAN_SCHEDULE grammar (clauses separated by ';' or ','):
/// `free` | `seed:<n>` | `replay:<path>` | `dpor` | `record:<path>` |
/// `pct:<k>` | `horizon:<h>` | `bound:<k>` | `graph[:<path>]`.
/// Empty / `0` / `off` / `none` yields a disarmed free config.
[[nodiscard]] bool parse_schedule(const std::string& text, Config* out,
                                  std::string* error = nullptr);

/// First mismatch between a replayed trace and the live run: the live query
/// at (actor, site, seq) asked for a different candidate count than the
/// recording. (Sites cannot mismatch: each (actor, site) pair replays its
/// own stream, so a timing-dependent skip of one site — a wait whose
/// predicate was already true at replay time — shows up as a tolerated
/// underrun of that stream, never as a false divergence of another.)
struct Divergence {
  ActorId actor;
  std::uint64_t seq{0};
  Site site{Site::kStreamOp};
  int expected_candidates{1};
  int got_candidates{1};

  [[nodiscard]] std::string to_string() const;
};

struct Stats {
  std::uint64_t decisions{0};    ///< choose() calls answered while armed
  std::uint64_t preemptions{0};  ///< seed mode: non-default answers
  std::uint64_t replayed{0};     ///< replay mode: answers taken from the trace
  std::uint64_t underruns{0};    ///< replay mode: queries past the trace end
  std::uint64_t divergences{0};  ///< replay mode: mismatched queries
};

class Controller;

namespace detail {
/// The calling thread's session-scoped controller (null: use the global one).
extern constinit thread_local Controller* t_current_controller;
/// Mirror of the *global* controller's armed state for unbound threads.
extern constinit std::atomic<bool> g_process_armed;
[[nodiscard]] const std::atomic<bool>& armed_flag_of(const Controller& controller);
}  // namespace detail

class Controller {
 public:
  /// A fresh, disarmed controller (session-scoped use).
  Controller() = default;
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// The calling thread's current controller: the session-scoped one
  /// installed by a Scope (svc::Session), else the process-global controller.
  [[nodiscard]] static Controller& instance();

  /// The process-global controller, regardless of any thread binding.
  [[nodiscard]] static Controller& global();

  /// Bind `controller` as the calling thread's current controller (nullptr:
  /// back to the global). Propagates via common::ThreadContext.
  class Scope {
   public:
    explicit Scope(Controller* controller);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Controller* previous_;
  };

  /// The zero-overhead fast path: false unless the current instance has a
  /// non-free strategy or recording active. Choice points gate on this
  /// before calling choose(). One TLS load, a predicted branch and one
  /// relaxed atomic load — the bench guard budget still holds.
  [[nodiscard]] static bool armed() {
    const Controller* current = detail::t_current_controller;
    return current != nullptr
               ? detail::armed_flag_of(*current).load(std::memory_order_relaxed)
               : detail::g_process_armed.load(std::memory_order_relaxed);
  }

  /// Answer one numbered decision: an index in [0, candidates). Call sites
  /// pass today's deterministic behavior as `default_index`; the free
  /// strategy (and every non-preempted seed decision) returns it unchanged,
  /// which is what makes exploration semantics-preserving by construction.
  [[nodiscard]] int choose(Site site, const ActorId& actor, int candidates,
                           int default_index = 0);

  /// Install a strategy programmatically (sweep harnesses, tests). Resets
  /// per-actor cursors, the recorded trace and any latched divergence.
  void configure(const Config& config);
  /// configure() for replay with the trace supplied as text instead of a
  /// file (differential tests). Returns false on a malformed trace.
  [[nodiscard]] bool configure_replay_text(const std::string& trace_text,
                                           std::string* error = nullptr, bool record = false);
  /// The explorer's strategy seam: pin the given decisions (each (actor,
  /// site) stream replays its slice of `prefix`), record everything, and
  /// let each stream fall back to free choices past its pinned slice — the
  /// recorded run is prefix + free suffix. An empty prefix is a plain
  /// free-recorded run. Entries must be per-stream seq-monotonic (any
  /// per-stream-prefix-closed subsequence of a recorded trace is).
  void configure_prefix(std::vector<TraceEntry> prefix);
  /// Load CUSAN_SCHEDULE (unset/empty: keeps current state). False on a
  /// parse error or an unreadable replay file.
  [[nodiscard]] bool load_env(std::string* error = nullptr);
  /// Disarm and drop all state.
  void clear();

  /// Session boundaries (capi::run_session): begin resets per-actor cursors,
  /// the recorded trace and the latched divergence so every session replays
  /// the trace from its start; end writes the recorded trace to the
  /// configured record path (the exported file is the last session's, like
  /// the Perfetto trace).
  void begin_session();
  void end_session();

  [[nodiscard]] Config config() const;
  [[nodiscard]] std::string strategy_string() const;
  /// Serialized trace of the decisions recorded since the last session
  /// begin/configure (empty when not recording).
  [[nodiscard]] std::string trace_text() const;
  /// trace_text(), then drop the recorded entries.
  [[nodiscard]] std::string take_trace();
  /// The recorded decisions in structured form (explorer input), dropped
  /// from the controller like take_trace().
  [[nodiscard]] std::vector<TraceEntry> take_recorded();
  [[nodiscard]] std::optional<Divergence> divergence() const;
  [[nodiscard]] Stats stats() const;

  /// Proc backend: merge a forked child rank's recorded decisions, stats and
  /// latched divergence into this (parent) controller, so cross-process runs
  /// export the same record trace / divergence verdicts as thread-backend
  /// runs. Entries append in child order (streams are per-(actor, site), so
  /// cross-child interleaving is irrelevant to replay). Returns false on a
  /// malformed trace text.
  bool absorb_child(const std::string& trace_text, const Stats& child_stats,
                    const std::optional<Divergence>& child_divergence,
                    std::string* error = nullptr);

 private:
  friend const std::atomic<bool>& detail::armed_flag_of(const Controller& controller);
  void set_armed(bool armed);
  void reset_run_state_locked();
  void flush_record_locked();
  [[nodiscard]] std::string strategy_string_locked() const;

  /// Mutable per-(actor, site)-stream run state: the stream-local decision
  /// counter and, in replay mode, the cursor into the stream's slice of the
  /// trace.
  struct StreamState {
    std::uint64_t seq{0};
    std::size_t cursor{0};
    bool diverged{false};  ///< this stream fell back to free after a mismatch
  };

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  Config config_;
  ScheduleTrace replay_;
  /// Replay entries grouped per stream_key (indices into replay_.entries).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> replay_streams_;
  std::unordered_map<std::uint64_t, StreamState> streams_;
  std::vector<TraceEntry> recorded_;
  std::optional<Divergence> divergence_;
  Stats stats_;
};

namespace detail {
inline const std::atomic<bool>& armed_flag_of(const Controller& controller) {
  return controller.armed_;
}
}  // namespace detail

}  // namespace schedsim
