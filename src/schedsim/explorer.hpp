// The multi-run DPOR driver: turns the single-run ScheduleController into a
// systematic explorer. Each iteration installs a pinned prefix on the
// controller (configure_prefix — replay:<path> generalized), executes one
// run via a harness-supplied callback, takes the recorded decision trace and
// the execution graph, and computes source-DPOR-style backtrack points: for
// every branchable decision in the run that is not part of the pinned
// prefix, every alternative candidate spawns a new prefix — unless the
// happens-before analysis proves the decision cannot race (it is ordered
// with every other lane's branchable decisions, so flipping it reaches no
// new happens-before class) or the prefix is already in the sleep set.
//
// Equivalence is tracked per-stream, matching the trace format's semantics:
// two runs whose (actor, site) streams recorded identical decisions are the
// same execution regardless of how OS timing interleaved the lines, so the
// sleep set keys on a canonical (stream-sorted) signature. The frontier is
// FIFO, which makes exploration breadth-first in flip depth — single-flip
// perturbations (the ones PCT finds with luck) are all tried before any
// two-flip prefix, so verdict-revealing schedules surface early even under
// a tight `bound:<k>`.
//
// The explorer is harness-agnostic: check_cutests, fault_sweep and tests
// supply the run callback (typically a closure over run_scenario_outcome);
// the explorer owns only the controller/recorder choreography and the
// frontier. Per-exploration counters land in obs as sched.dpor_*.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "schedsim/execution_graph.hpp"
#include "schedsim/trace.hpp"

namespace schedsim {

class Controller;

struct ExplorerOptions {
  /// Maximum executed schedules, baseline included (0 = kDefaultBound).
  std::uint32_t bound{0};
  /// Use the recorded ExecutionGraph to prune non-racing backtrack points.
  /// Off, every branchable decision backtracks (pure DFS over the choice
  /// tree — what the 2-site toy property test exercises).
  bool use_graph{true};
  /// Keep each execution's serialized graph text (CI artifact upload).
  bool collect_graphs{false};

  static constexpr std::uint32_t kDefaultBound = 24;
};

/// One executed schedule.
struct Execution {
  std::size_t index{0};
  std::size_t pinned{0};            ///< decisions pinned by the prefix
  std::vector<TraceEntry> trace;    ///< full recorded decision sequence
  std::size_t races{0};             ///< harness-reported race count
  bool diverged{false};             ///< pinned prefix stopped matching
  double wall_ms{0.0};
  std::string graph_text;           ///< when ExplorerOptions::collect_graphs
};

struct ExplorerStats {
  std::uint64_t executions{0};
  std::uint64_t backtrack_points{0};  ///< prefixes pushed onto the frontier
  std::uint64_t sleep_prunes{0};      ///< prefixes already in the sleep set
  std::uint64_t hb_prunes{0};         ///< decisions proven non-racing
  std::uint64_t redundant{0};         ///< executions equal to a previous one
  std::uint64_t graph_nodes{0};
  std::uint64_t graph_edges{0};
  std::uint64_t frontier_peak{0};
  bool bound_hit{false};
};

class Explorer {
 public:
  /// Runs one schedule end-to-end and returns the number of races the
  /// harness observed (any other verdict data stays in the closure).
  using RunFn = std::function<std::size_t()>;

  explicit Explorer(ExplorerOptions options = {});

  /// Drive the exploration: repeatedly configure `controller`, invoke
  /// `run`, and grow the frontier until it is empty or the bound is hit.
  /// Leaves the controller disarmed. Each call resets stats.
  std::vector<Execution> explore(Controller& controller, const RunFn& run);

  [[nodiscard]] const ExplorerStats& stats() const { return stats_; }

  /// Publish stats() into the current obs registry as sched.dpor_*.
  void publish_metrics() const;

  /// Canonical per-stream signature of a decision sequence: sorted by
  /// (stream, seq), so physically different interleavings of the same
  /// per-stream decisions compare equal.
  [[nodiscard]] static std::string signature(const std::vector<TraceEntry>& entries);

 private:
  ExplorerOptions options_;
  ExplorerStats stats_;
};

}  // namespace schedsim
