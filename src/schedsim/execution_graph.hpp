// The execution graph: a serializable happens-before skeleton of one checked
// run, recorded while the schedule controller is exploring. Nodes are the
// events the explorer reasons about — every Controller decision plus the
// sync operations rsan's vector clocks are built from (stream sync, p2p
// match, collective join, all funnelled through rsan's happens_before /
// happens_after annotations). Edges are program order within a lane (one
// lane per decision actor; rsan sync events land on their rank's host lane,
// because the analysis runtime runs at API-interception time on the host
// thread) and release->acquire order on a sync key. Together they induce the
// same partial order rsan's clocks compute, in a form the DPOR explorer
// (explorer.hpp) can walk run-over-run: two decisions unordered in the graph
// are a racing pair worth backtracking on; ordered ones provably commute.
//
// The graph serializes alongside the decision trace (trace.hpp) so a CI
// failure ships both artifacts of the failing execution:
//
//   # cusan-execution-graph v1
//   # strategy <controller strategy string>
//   n <id> d <actor> <site> <seq> <candidates> <chosen>   decision node
//   n <id> r <actor> <ctx> <key>                          release (happens_before)
//   n <id> a <actor> <ctx> <key>                          acquire (happens_after)
//   e <from> <to> po|sync
//
// Recording is gated exactly like the controller: disarmed, every rsan sync
// annotation costs one relaxed atomic load (the bench guard budget), armed
// it takes the recorder mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "schedsim/trace.hpp"

namespace schedsim {

enum class NodeKind : std::uint8_t {
  kDecision,  ///< one Controller::choose() answer
  kRelease,   ///< rsan happens_before(key)
  kAcquire,   ///< rsan happens_after(key)
};

struct GraphNode {
  std::uint32_t id{0};
  NodeKind kind{NodeKind::kDecision};
  /// Lane the node executes on. Decisions keep their controller ActorId;
  /// sync events use the rank's host lane ({rank, 'h', 0}).
  ActorId actor;
  // Decision payload (kDecision).
  Site site{Site::kStreamOp};
  std::uint64_t seq{0};  ///< (actor, site) decision-stream index
  int candidates{1};
  int chosen{0};
  // Sync payload (kRelease / kAcquire).
  std::uint32_t ctx{0};   ///< rsan context (fiber) id performing the sync
  std::uint64_t key{0};   ///< sync-object key (address at record time)
};

struct GraphEdge {
  enum class Kind : std::uint8_t {
    kProgram,  ///< same-lane successor
    kSync,     ///< release -> acquire on the same key
  };
  std::uint32_t from{0};
  std::uint32_t to{0};
  Kind kind{Kind::kProgram};
};

struct ExecutionGraph {
  std::string strategy;  ///< controller strategy string, informational
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
};

/// Serialize to the v1 text format.
[[nodiscard]] std::string serialize_graph(const ExecutionGraph& graph);

/// Parse the v1 text format. False (with *error set, if given) on bad magic,
/// unknown node/edge kind, duplicate node id, or malformed fields.
[[nodiscard]] bool parse_graph(const std::string& text, ExecutionGraph* out,
                               std::string* error = nullptr);

/// Schema validation beyond parsing (trace_lint --graph): every edge
/// endpoint names an existing node (dangling check), no sync edge targets a
/// non-acquire node, and the edge relation is acyclic (Kahn toposort — the
/// recorder only ever emits forward edges, so a cycle means tampering).
[[nodiscard]] bool validate_graph(const ExecutionGraph& graph, std::string* error = nullptr);

/// Ancestor-reachability analysis over a parsed/recorded graph, used by the
/// explorer to prune backtrack points: a decision ordered (in either
/// direction) with every other lane's decisions cannot be part of a racing
/// pair, so flipping it reaches no new happens-before class.
class GraphAnalysis {
 public:
  /// Builds per-node ancestor bitsets in topological order. Graphs past
  /// `max_nodes` disable the analysis (everything reports racing — the
  /// conservative direction: the explorer just prunes less).
  explicit GraphAnalysis(const ExecutionGraph& graph, std::size_t max_nodes = 1 << 15);

  [[nodiscard]] bool usable() const { return usable_; }
  /// Whether the graph recorded the decision at ((actor, site), seq).
  [[nodiscard]] bool has_decision(std::uint64_t stream, std::uint64_t seq) const;
  /// True when some other-lane decision with >1 candidates is concurrent
  /// with this one (or the analysis is unusable / the decision unknown).
  [[nodiscard]] bool decision_races(std::uint64_t stream, std::uint64_t seq) const;

 private:
  [[nodiscard]] bool reaches(std::uint32_t from, std::uint32_t to) const;

  bool usable_{false};
  std::size_t words_{0};
  std::vector<std::uint64_t> ancestors_;        ///< nodes * words_ bitset matrix
  std::vector<std::uint32_t> decision_nodes_;   ///< indices of branchable decisions
  std::unordered_map<std::uint64_t, std::uint32_t> decision_index_;  ///< (stream,seq) hash -> node
  const ExecutionGraph* graph_{nullptr};
};

class GraphRecorder;

namespace detail {
/// The calling thread's session-scoped recorder (null: the global one).
extern constinit thread_local GraphRecorder* t_current_recorder;
/// Mirror of the *global* recorder's armed state for unbound threads.
extern constinit std::atomic<bool> g_graph_armed;
[[nodiscard]] const std::atomic<bool>& graph_armed_flag_of(const GraphRecorder& recorder);
}  // namespace detail

/// Incremental execution-graph builder, session-scoped exactly like the
/// Controller (Scope + common::ThreadContext propagation). The controller
/// feeds it decisions from choose(); rsan feeds it sync events from its
/// annotation entry points. Both gate on enabled() first, so the disarmed
/// cost is one relaxed load.
class GraphRecorder {
 public:
  GraphRecorder() = default;
  GraphRecorder(const GraphRecorder&) = delete;
  GraphRecorder& operator=(const GraphRecorder&) = delete;

  /// The calling thread's current recorder: session-scoped if installed by
  /// a Scope, else the process-global recorder.
  [[nodiscard]] static GraphRecorder& instance();
  [[nodiscard]] static GraphRecorder& global();

  class Scope {
   public:
    explicit Scope(GraphRecorder* recorder);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    GraphRecorder* previous_;
  };

  /// The zero-overhead gate rsan and the controller check before recording.
  [[nodiscard]] static bool enabled() {
    const GraphRecorder* current = detail::t_current_recorder;
    return current != nullptr
               ? detail::graph_armed_flag_of(*current).load(std::memory_order_relaxed)
               : detail::g_graph_armed.load(std::memory_order_relaxed);
  }

  void arm(bool on);
  /// Drop the previous run's graph and lane state (explorer: per execution;
  /// capi: at session begin).
  void begin_run();

  void record_decision(const ActorId& actor, Site site, std::uint64_t seq, int candidates,
                       int chosen);
  void record_release(int rank, std::uint32_t ctx, const void* key);
  void record_acquire(int rank, std::uint32_t ctx, const void* key);
  /// rsan::release_sync_object: the key's address may be reused by a future
  /// unrelated sync object, so retire its pending release nodes.
  void record_key_retire(const void* key);

  void set_strategy(std::string strategy);
  [[nodiscard]] ExecutionGraph snapshot() const;
  /// snapshot(), then drop the graph.
  [[nodiscard]] ExecutionGraph take_graph();
  [[nodiscard]] std::size_t node_count() const;

 private:
  friend const std::atomic<bool>& detail::graph_armed_flag_of(const GraphRecorder& recorder);
  /// Appends the node, adding the program-order edge from its lane's
  /// previous node. Returns the new node's id.
  std::uint32_t append_node_locked(GraphNode node);

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  ExecutionGraph graph_;
  std::unordered_map<std::uint64_t, std::uint32_t> lane_last_;      ///< actor key -> node id + 1
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> releases_;  ///< sync key -> nodes
};

namespace detail {
inline const std::atomic<bool>& graph_armed_flag_of(const GraphRecorder& recorder) {
  return recorder.armed_;
}
}  // namespace detail

}  // namespace schedsim
