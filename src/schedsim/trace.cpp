#include "schedsim/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/format.hpp"

namespace schedsim {

namespace {
constexpr const char* kMagic = "# cusan-schedule-trace v1";
}  // namespace

const char* to_string(Site site) {
  switch (site) {
    case Site::kStreamOp:
      return "stream_op";
    case Site::kMatchRecv:
      return "match_recv";
    case Site::kWakeOrder:
      return "wake_order";
    case Site::kPreParkYield:
      return "pre_park_yield";
    case Site::kWaitany:
      return "waitany";
    case Site::kWaitallOrder:
      return "waitall_order";
  }
  return "unknown";
}

bool site_from_string(const std::string& name, Site* out) {
  static constexpr Site kAll[] = {Site::kStreamOp,     Site::kMatchRecv, Site::kWakeOrder,
                                  Site::kPreParkYield, Site::kWaitany,   Site::kWaitallOrder};
  for (const Site site : kAll) {
    if (name == to_string(site)) {
      *out = site;
      return true;
    }
  }
  return false;
}

std::string ActorId::to_string() const {
  char buf[48];
  if (local == 0) {
    std::snprintf(buf, sizeof(buf), "%d:%c", rank, kind);
  } else {
    std::snprintf(buf, sizeof(buf), "%d:%c%u", rank, kind, local);
  }
  return buf;
}

std::string serialize_trace(const ScheduleTrace& trace) {
  std::string out = kMagic;
  out += '\n';
  if (!trace.strategy.empty()) {
    out += "# strategy ";
    out += trace.strategy;
    out += '\n';
  }
  for (const TraceEntry& e : trace.entries) {
    out += common::format("d {} {} {} {} {}\n", e.actor.to_string(), e.seq, to_string(e.site),
                          e.candidates, e.chosen);
  }
  return out;
}

namespace {

[[nodiscard]] bool fail(std::string* error, std::size_t line_no, const std::string& message) {
  if (error != nullptr) {
    *error = common::format("line {}: {}", line_no, message);
  }
  return false;
}

/// Parse `<rank>:<kind>[<local>]` (e.g. `0:h`, `1:s4097`, `-1:h`).
[[nodiscard]] bool parse_actor(const std::string& token, ActorId* out) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos || colon + 1 >= token.size()) {
    return false;
  }
  char* end = nullptr;
  const long rank = std::strtol(token.c_str(), &end, 10);
  if (end != token.c_str() + colon) {
    return false;
  }
  const char kind = token[colon + 1];
  if (kind != 'h' && kind != 's') {
    return false;
  }
  unsigned long local = 0;
  if (colon + 2 < token.size()) {
    const char* rest = token.c_str() + colon + 2;
    local = std::strtoul(rest, &end, 10);
    if (*end != '\0') {
      return false;
    }
  }
  out->rank = static_cast<int>(rank);
  out->kind = kind;
  out->local = static_cast<std::uint32_t>(local);
  return true;
}

}  // namespace

bool parse_trace(const std::string& text, ScheduleTrace* out, std::string* error) {
  out->strategy.clear();
  out->entries.clear();
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool have_magic = false;
  // Per-(actor, site)-stream next-expected seq: replay identifies decisions
  // by their position in the stream, so a gap or repeat makes the whole
  // document meaningless — reject it here rather than misattribute decisions
  // later.
  std::map<std::uint64_t, std::uint64_t> next_seq;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (line_no == 1 || !have_magic) {
      if (line != kMagic) {
        return fail(error, line_no, "missing 'cusan-schedule-trace v1' header");
      }
      have_magic = true;
      continue;
    }
    if (line.rfind("# strategy ", 0) == 0) {
      out->strategy = line.substr(11);
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    std::string actor_token;
    std::string site_token;
    TraceEntry entry;
    long long seq = -1;
    if (!(fields >> tag >> actor_token >> seq >> site_token >> entry.candidates >>
          entry.chosen) ||
        tag != "d") {
      return fail(error, line_no, "malformed decision line (want 'd actor seq site cand chosen')");
    }
    std::string extra;
    if (fields >> extra) {
      return fail(error, line_no, "trailing fields on decision line");
    }
    if (!parse_actor(actor_token, &entry.actor)) {
      return fail(error, line_no, common::format("bad actor '{}'", actor_token));
    }
    if (!site_from_string(site_token, &entry.site)) {
      return fail(error, line_no, common::format("unknown site '{}'", site_token));
    }
    if (seq < 0) {
      return fail(error, line_no, "negative seq");
    }
    entry.seq = static_cast<std::uint64_t>(seq);
    if (entry.candidates < 1) {
      return fail(error, line_no, "candidates must be >= 1");
    }
    if (entry.chosen < 0 || entry.chosen >= entry.candidates) {
      return fail(error, line_no,
                  common::format("chosen {} outside [0, {})", entry.chosen, entry.candidates));
    }
    std::uint64_t& expect = next_seq[stream_key(entry.actor, entry.site)];
    if (entry.seq != expect) {
      return fail(error, line_no,
                  common::format("actor {} {} seq {} out of order (expected {})",
                                 entry.actor.to_string(), site_token, entry.seq, expect));
    }
    ++expect;
    out->entries.push_back(entry);
  }
  if (!have_magic) {
    return fail(error, line_no, "empty document (missing header)");
  }
  return true;
}

}  // namespace schedsim
