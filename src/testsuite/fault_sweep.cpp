#include "testsuite/fault_sweep.hpp"

#include <csignal>
#include <cstdio>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "faultsim/injector.hpp"
#include "mpisim/failure.hpp"
#include "obs/metrics.hpp"
#include "schedsim/controller.hpp"
#include "schedsim/explorer.hpp"
#include "svc/executor.hpp"
#include "testsuite/scenarios.hpp"

namespace testsuite {
namespace {

using faultsim::Action;
using faultsim::ScopeKind;
using faultsim::Site;

[[nodiscard]] bool is_mpi_site(Site site) {
  switch (site) {
    case Site::kSend:
    case Site::kRecv:
    case Site::kWait:
    case Site::kBarrier:
    case Site::kCollective:
      return true;
    default:
      return false;
  }
}

/// Draw one spec whose (site, scope, action) combination passes plan
/// validation. Concrete scopes only: scenario worlds are at least 2 ranks
/// (CUSAN_RANKS may widen them) with 1 device each, so dev0/rank0/rank1/
/// stream0..2 always exist.
[[nodiscard]] faultsim::FaultSpec random_spec(common::SplitMix64& rng) {
  static constexpr Site kSites[] = {Site::kMalloc, Site::kMemcpy, Site::kMemset,
                                    Site::kKernel, Site::kSend,   Site::kRecv,
                                    Site::kWait,   Site::kBarrier, Site::kCollective};
  faultsim::FaultSpec spec;
  spec.site = kSites[rng.next_below(sizeof(kSites) / sizeof(kSites[0]))];

  if (is_mpi_site(spec.site)) {
    switch (rng.next_below(3)) {
      case 0:
        spec.scope_kind = ScopeKind::kAny;
        break;
      default:
        spec.scope_kind = ScopeKind::kRank;
        spec.scope_id = static_cast<int>(rng.next_below(2));  // ranks 0..1
        break;
    }
    // stall is rationed: at most one per plan would still be fine, but its
    // cost is a full watchdog timeout per run, so keep it rare.
    const auto roll = rng.next_below(10);
    if (roll < 1) {
      spec.action = Action::kStall;
    } else if (roll < 5) {
      spec.action = Action::kDelay;
      spec.delay = std::chrono::microseconds(200 + 200 * rng.next_below(5));
    } else {
      spec.action = Action::kFail;
    }
  } else {
    switch (rng.next_below(3)) {
      case 0:
        spec.scope_kind = ScopeKind::kAny;
        break;
      case 1:
        spec.scope_kind = ScopeKind::kDevice;
        spec.scope_id = 0;  // each rank's only device
        break;
      default:
        spec.scope_kind = ScopeKind::kStream;
        spec.scope_id = static_cast<int>(rng.next_below(3));  // default + 2 user streams
        break;
    }
    if (spec.site == Site::kMalloc) {
      spec.action = rng.next_below(3) == 0 ? Action::kDelay : Action::kOom;
    } else if (spec.site == Site::kKernel) {
      spec.action = rng.next_below(2) == 0 ? Action::kAbort : Action::kFail;
    } else {
      const auto roll = rng.next_below(3);
      spec.action = roll == 0 ? Action::kAbort : (roll == 1 ? Action::kDelay : Action::kFail);
    }
    if (spec.action == Action::kDelay) {
      spec.delay = std::chrono::microseconds(200 + 200 * rng.next_below(5));
    }
  }

  spec.nth = 1 + rng.next_below(4);
  if (rng.next_below(2) == 0) {
    spec.period = 2 + rng.next_below(5);
  }
  return spec;
}

/// One rank_kill spec: a concrete rank (0/1 always exist), one of the three
/// death modes, aimed at an early MPI operation so the kill lands while the
/// victim's peers are still mid-conversation. No period: a killed process
/// cannot die twice, and the supervisor declares first-failure only.
[[nodiscard]] faultsim::FaultSpec random_kill_spec(common::SplitMix64& rng) {
  faultsim::FaultSpec spec;
  spec.site = Site::kRankKill;
  spec.scope_kind = ScopeKind::kRank;
  spec.scope_id = static_cast<int>(rng.next_below(2));
  switch (rng.next_below(3)) {
    case 0:
      spec.action = Action::kSigkill;
      break;
    case 1:
      spec.action = Action::kSigabrt;
      break;
    default:
      spec.action = Action::kHang;
      break;
  }
  spec.nth = 1 + rng.next_below(4);
  return spec;
}

/// Everything one (plan, scenario) pair contributes to the sweep stats.
/// Computed against the calling thread's injector/controller (global when
/// sequential, session-private under --jobs) and merged in deterministic
/// (plan, scenario) order by the caller.
struct RunPartial {
  std::size_t runs{0};
  std::size_t faulted_runs{0};
  std::uint64_t faults_fired{0};
  std::uint64_t faults_unsurfaced{0};
  std::size_t verdict_mismatches{0};
  std::size_t rank_kill_runs{0};
  std::size_t rank_failure_reports{0};
  std::uint64_t dpor_executions{0};
  std::uint64_t dpor_hb_prunes{0};
  std::vector<std::string> failures;
};

/// All rounds (free schedule + optional PCT seeds) of one plan against one
/// scenario, checking invariants 2-4 against the unfaulted baseline.
[[nodiscard]] RunPartial run_plan_rounds(const faultsim::FaultPlan& plan,
                                         const Scenario& scenario, std::size_t baseline_races,
                                         const SweepOptions& options, int p, bool fast) {
  auto& injector = faultsim::Injector::instance();
  obs::Counter& rank_failure_metric = obs::metric("mpisim.proc.rank_failures");
  RunPartial partial;

  // One faulted run under whatever schedule the caller configured, plus the
  // invariant checks against its fired-fault ledger. Shared between the PCT
  // rounds loop and the DPOR exploration (where the explorer decides how
  // many times this executes).
  const auto one_run = [&](int round) -> std::size_t {
    injector.load(plan);  // resets match counters: every run sees the same schedule
    const std::uint64_t failures_before = rank_failure_metric.value();
    const std::size_t races = run_scenario_outcome(scenario, fast, options.watchdog).races;
    const std::uint64_t failures_reported = rank_failure_metric.value() - failures_before;
    const std::vector<faultsim::FiredFault> fired = injector.take_fired();
    ++partial.runs;
    partial.rank_failure_reports += failures_reported;
    if (fired.empty()) {
      // Invariant 2: fault hooks that never fire must be invisible — and
      // with schedules, verdicts must not depend on the interleaving.
      if (races != baseline_races) {
        ++partial.verdict_mismatches;
        partial.failures.push_back(common::format(
            "plan {} scenario {} round {}: no fault fired but verdict changed ({} races vs "
            "baseline {})",
            p, scenario.name, round, races, baseline_races));
      }
      return races;
    }
    ++partial.faulted_runs;
    partial.faults_fired += fired.size();
    std::size_t kills_fired = 0;
    for (const faultsim::FiredFault& f : fired) {
      // Invariant 3: every fired fault is accounted through some channel.
      if (f.surfaced == faultsim::Channel::kNone) {
        ++partial.faults_unsurfaced;
        partial.failures.push_back(
            common::format("plan {} scenario {} round {}: fault #{} ({} at {}) fired but was "
                           "never surfaced through any channel",
                           p, scenario.name, round, f.id, to_string(f.action),
                           to_string(f.site)));
      }
      if (f.site == Site::kRankKill) {
        ++kills_fired;
        // A fired kill may only ever surface as the supervisor's
        // structured failure report — any other channel means the death
        // leaked out through a side door.
        if (f.surfaced != faultsim::Channel::kFailureReport) {
          partial.failures.push_back(common::format(
              "plan {} scenario {} round {}: rank_kill #{} surfaced via '{}' instead of a "
              "RankFailureReport",
              p, scenario.name, round, f.id, to_string(f.surfaced)));
        }
      }
    }
    if (kills_fired > 0) {
      ++partial.rank_kill_runs;
      // Invariant 4: a run that killed ranks produces exactly one
      // RankFailureReport — the supervisor declares first-failure only,
      // and zero reports would mean an unnoticed death.
      if (failures_reported != 1) {
        partial.failures.push_back(common::format(
            "plan {} scenario {} round {}: {} rank_kill(s) fired but {} RankFailureReports "
            "were declared (expected exactly 1)",
            p, scenario.name, round, kills_fired, failures_reported));
      }
    }
    if (options.verbose) {
      std::printf("[sweep] plan %d round %d %-70s races=%zu fired=%zu outcome=%s\n", p, round,
                  scenario.name.c_str(), races, fired.size(), classify_run(fired).c_str());
    }
    return races;
  };

  if (options.dpor) {
    // Round 0 runs the faulted plan on the free schedule, then the explorer
    // systematically covers the run's happens-before classes; every executed
    // schedule passes through the same invariant checks above.
    schedsim::Controller::instance().clear();
    (void)one_run(0);
    schedsim::ExplorerOptions explorer_options;
    explorer_options.bound = options.dpor_bound;
    schedsim::Explorer explorer(explorer_options);
    int round = 0;
    (void)explorer.explore(schedsim::Controller::instance(), [&] { return one_run(++round); });
    partial.dpor_executions += explorer.stats().executions;
    partial.dpor_hb_prunes += explorer.stats().hb_prunes;
    return partial;
  }

  // With schedules requested, every (plan, scenario) run repeats under N
  // seed-deterministic PCT schedules: round 0 is the free schedule, rounds
  // 1..N perturb it. The invariants must hold under every combination.
  const int rounds = options.schedules > 0 ? options.schedules + 1 : 1;
  for (int round = 0; round < rounds; ++round) {
    if (options.schedules > 0) {
      if (round == 0) {
        schedsim::Controller::instance().clear();
      } else {
        schedsim::Config sched;
        sched.mode = schedsim::Mode::kSeed;
        sched.seed = options.seed ^ (static_cast<std::uint64_t>(p) << 32) ^
                     static_cast<std::uint64_t>(round);
        schedsim::Controller::instance().configure(sched);
      }
    }
    (void)one_run(round);
  }
  return partial;
}

void merge_partial(SweepStats& stats, RunPartial& partial) {
  stats.runs += partial.runs;
  stats.faulted_runs += partial.faulted_runs;
  stats.faults_fired += partial.faults_fired;
  stats.faults_unsurfaced += partial.faults_unsurfaced;
  stats.verdict_mismatches += partial.verdict_mismatches;
  stats.rank_kill_runs += partial.rank_kill_runs;
  stats.rank_failure_reports += partial.rank_failure_reports;
  stats.dpor_executions += partial.dpor_executions;
  stats.dpor_hb_prunes += partial.dpor_hb_prunes;
  for (std::string& failure : partial.failures) {
    stats.failures.push_back(std::move(failure));
  }
}

}  // namespace

std::string classify_run(const std::vector<faultsim::FiredFault>& fired) {
  if (fired.empty()) {
    return "clean";
  }
  for (const faultsim::FiredFault& f : fired) {
    if (f.site != Site::kRankKill) {
      continue;
    }
    const std::string rank = "rank " + std::to_string(f.where.rank);
    switch (f.action) {
      case Action::kSigkill:
        return "rank-killed (" + rank + ", " + mpisim::signal_name(SIGKILL) + ")";
      case Action::kSigabrt:
        return "rank-killed (" + rank + ", " + mpisim::signal_name(SIGABRT) + ")";
      case Action::kHang:
        return "rank-hang (" + rank + ", heartbeat timeout, " + mpisim::signal_name(SIGKILL) +
               ")";
      default:
        break;
    }
  }
  return "perturbed";
}

faultsim::FaultPlan make_random_plan(std::uint64_t seed, int faults, int rank_kills) {
  common::SplitMix64 rng(seed);
  faultsim::FaultPlan plan;
  for (int i = 0; i < faults; ++i) {
    plan.add(random_spec(rng));
  }
  for (int i = 0; i < rank_kills; ++i) {
    plan.add(random_kill_spec(rng));
  }
  return plan;
}

SweepStats run_fault_sweep(const SweepOptions& options) {
  auto& injector = faultsim::Injector::instance();
  SweepStats stats;

  std::vector<Scenario> scenarios;
  for (Scenario& sc : build_scenarios()) {
    if (options.filter.empty() || sc.name.find(options.filter) != std::string::npos) {
      scenarios.push_back(std::move(sc));
    }
  }
  stats.scenarios = scenarios.size();

  const bool fast = rsan::RuntimeConfig{}.use_shadow_fast_path;

  std::vector<faultsim::FaultPlan> plans;
  plans.reserve(static_cast<std::size_t>(options.plans));
  for (int p = 0; p < options.plans; ++p) {
    plans.push_back(make_random_plan(options.seed + static_cast<std::uint64_t>(p),
                                     options.faults_per_plan, options.rank_kills));
    if (options.verbose) {
      std::printf("[sweep] plan %d: %s\n", p, plans.back().to_string().c_str());
    }
  }

  if (options.jobs > 1) {
    // Concurrent sweep: every scenario baseline and every (plan, scenario)
    // pair runs as its own svc::Session. Each body's Injector/Controller
    // instance() resolves to the session's private pair, so concurrent runs
    // cannot cross-contaminate ledgers; partials land in pre-sized slots and
    // merge in the same order the sequential loop would have produced.
    svc::ExecutorOptions exec_options;
    exec_options.workers = options.jobs;
    svc::Executor executor(exec_options);

    std::vector<std::size_t> baseline(scenarios.size(), 0);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      svc::SessionSpec spec;
      spec.label = scenarios[i].name + "/baseline";
      spec.body = [&scenarios, &baseline, &options, fast, i] {
        baseline[i] = run_scenario_outcome(scenarios[i], fast, options.watchdog).races;
      };
      (void)executor.submit(std::move(spec));
    }
    executor.wait_idle();

    std::vector<RunPartial> partials(plans.size() * scenarios.size());
    for (std::size_t p = 0; p < plans.size(); ++p) {
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        svc::SessionSpec spec;
        spec.label = scenarios[i].name + "/plan" + std::to_string(p);
        spec.body = [&plans, &scenarios, &baseline, &partials, &options, fast, p, i] {
          partials[p * scenarios.size() + i] = run_plan_rounds(
              plans[p], scenarios[i], baseline[i], options, static_cast<int>(p), fast);
        };
        (void)executor.submit(std::move(spec));
      }
    }
    executor.wait_idle();
    for (RunPartial& partial : partials) {
      merge_partial(stats, partial);
    }
    return stats;
  }

  // Unfaulted baseline (also exercises the watchdog's no-false-positive
  // promise: a short timeout must not misfire on clean runs).
  injector.clear();
  std::vector<std::size_t> baseline;
  baseline.reserve(scenarios.size());
  for (const Scenario& sc : scenarios) {
    baseline.push_back(run_scenario_outcome(sc, fast, options.watchdog).races);
  }

  for (std::size_t p = 0; p < plans.size(); ++p) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      RunPartial partial =
          run_plan_rounds(plans[p], scenarios[i], baseline[i], options, static_cast<int>(p), fast);
      merge_partial(stats, partial);
    }
  }

  injector.clear();
  if (options.schedules > 0 || options.dpor) {
    schedsim::Controller::instance().clear();
  }
  return stats;
}

}  // namespace testsuite
