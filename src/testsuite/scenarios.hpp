// The CuSan correctness test suite (paper §VI-C) as a reusable library:
// a matrix of small CUDA-aware MPI programs — correct and seeded-racy — over
// communication direction x memory kind x stream kind x synchronization
// mechanism. Consumed by the gtest suite (tests/test_testsuite.cpp) and by
// the llvm-lit-style runner (tools/check_cutests.cpp), mirroring the
// artifact's `make check-cutests` target.
#pragma once

#include <string>
#include <vector>

#include "capi/session.hpp"

namespace testsuite {

enum class Direction { kCudaToMpi, kMpiToCuda };
enum class Mem { kDevice, kManaged, kPinned };
enum class StreamKind { kDefault, kUser, kNonBlocking };
enum class Sync {
  kNone,         ///< cuda-to-mpi: no sync before MPI        -> race
  kDevice,       ///< cudaDeviceSynchronize                  -> clean
  kStream,       ///< cudaStreamSynchronize(launch stream)   -> clean
  kWrongStream,  ///< synchronize an unrelated stream        -> race
  kEvent,        ///< record + cudaEventSynchronize          -> clean
  kEventEarly,   ///< event recorded BEFORE the kernel       -> race
  kQuery,        ///< busy-wait on cudaStreamQuery           -> clean
  kMemcpy,       ///< implicit sync via cudaMemcpy D2H       -> clean unless non-blocking stream
  // mpi-to-cuda completion modes:
  kWait,         ///< MPI_Wait before the kernel             -> clean
  kNoWait,       ///< kernel launched before MPI_Wait        -> race
  kTestLoop,     ///< MPI_Test loop before the kernel        -> clean
};

/// Which byte sub-range of the buffer the kernel's IR provably touches
/// (interval analysis): the whole buffer (⊤ summary), only the tail half
/// (disjoint from the exchanged head half) or only the head half (overlapping
/// the exchange).
enum class Span { kWhole, kTail, kHead };

/// Annotation precision the run is configured with: the paper's
/// whole-allocation ranges or the byte-precise interval refinement.
enum class Precision { kWholeRange, kIntervals };

[[nodiscard]] const char* to_string(Mem m);
[[nodiscard]] const char* to_string(StreamKind s);
[[nodiscard]] const char* to_string(Sync s);
[[nodiscard]] const char* to_string(Span s);

struct Scenario {
  std::string name;
  Direction dir{Direction::kCudaToMpi};
  Mem mem{Mem::kDevice};
  StreamKind stream{StreamKind::kDefault};
  Sync sync{Sync::kNone};
  /// Default-stream semantics the program is compiled with (§VI-B).
  cusim::DefaultStreamMode stream_mode{cusim::DefaultStreamMode::kLegacy};
  Span span{Span::kWhole};
  Precision precision{Precision::kIntervals};
  bool expect_race{false};
};

/// The full parameterized scenario matrix (62 entries, incl. per-thread
/// default-stream mode).
[[nodiscard]] std::vector<Scenario> build_scenarios();

/// Run one scenario's pairwise program on the given rank: ranks pair up as
/// (2i, 2i+1) so the scenario runs on every pair of the world concurrently
/// (world size comes from capi::default_ranks(), i.e. CUSAN_RANKS).
void scenario_rank_main(capi::RankEnv& env, const Scenario& scenario);

/// Race count plus the tracked-byte volume (rsan read_range/write_range
/// bytes summed over both ranks) — the per-scenario precision metric that
/// tools/check_cutests reports — and the shadow fast-path hit counters
/// (zero when the fast path is disabled).
struct ScenarioOutcome {
  std::size_t races{0};
  std::uint64_t tracked_bytes{0};
  std::uint64_t fastpath_hits{0};             ///< range-cache + block-summary hits
  std::uint64_t fastpath_granules_elided{0};  ///< granule scans skipped
  std::uint64_t elided_launches{0};           ///< launches with ≥1 proof-elided argument
  std::uint64_t elided_bytes{0};              ///< annotation bytes proven race-free & elided
};

/// Run a scenario under MUST & CuSan and return races + tracked bytes.
/// The one-argument form uses the environment-default shadow fast-path
/// setting; the two-argument form pins it (dual-mode divergence checks).
/// The three-argument form additionally sets the MPI watchdog timeout
/// (fault-sweep runs use a short timeout so injected stalls resolve fast).
/// The four-argument form also pins the prove-and-elide mode (the shorter
/// forms inherit the CUSAN_PROVE_ELIDE environment default).
[[nodiscard]] ScenarioOutcome run_scenario_outcome(const Scenario& scenario);
[[nodiscard]] ScenarioOutcome run_scenario_outcome(const Scenario& scenario,
                                                   bool use_shadow_fast_path);
[[nodiscard]] ScenarioOutcome run_scenario_outcome(const Scenario& scenario,
                                                   bool use_shadow_fast_path,
                                                   std::chrono::milliseconds watchdog_timeout);
[[nodiscard]] ScenarioOutcome run_scenario_outcome(const Scenario& scenario,
                                                   bool use_shadow_fast_path,
                                                   std::chrono::milliseconds watchdog_timeout,
                                                   cusan::ProveElide prove_elide);

/// Run a scenario under MUST & CuSan and return the total race count.
[[nodiscard]] std::size_t run_scenario(const Scenario& scenario);

/// True if the tool classified the scenario as its definition expects.
[[nodiscard]] inline bool classified_correctly(const Scenario& scenario, std::size_t races) {
  return scenario.expect_race ? races >= 1 : races == 0;
}

}  // namespace testsuite
