// Differential fault sweep: run the full scenario matrix under randomized
// (but seed-deterministic) fault plans and check the three robustness
// invariants the checker stack promises when the substrate fails:
//
//   1. No crash and no hang — every run terminates (injected stalls resolve
//      through the MPI progress watchdog).
//   2. Runs in which no fault fired produce verdicts identical to the
//      unfaulted baseline (fault hooks are invisible until they fire).
//   3. Every fault that fired is *accounted for*: surfaced as an API error,
//      a sticky CUDA error, a MUST report, a DeadlockReport, or marked as a
//      pure perturbation (delay).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "faultsim/injector.hpp"
#include "faultsim/plan.hpp"

namespace testsuite {

struct SweepOptions {
  std::uint64_t seed{0x5eed};
  /// Number of random fault plans to sweep (plan i uses seed + i).
  int plans{3};
  /// Fault specs per generated plan.
  int faults_per_plan{4};
  /// Substring filter on scenario names (empty = all scenarios).
  std::string filter;
  /// MPI watchdog timeout for every run; keep small so stalls resolve fast.
  std::chrono::milliseconds watchdog{150};
  /// Print one line per (plan, scenario) run to stdout.
  bool verbose{false};
  /// Randomized schedules per (plan, scenario) run: 0 keeps the free
  /// schedule; N > 0 repeats every faulted run under N seed-deterministic
  /// PCT schedules, so fault plans and schedule perturbations compose. The
  /// unfaulted baseline always runs on the free schedule — invariant 2
  /// therefore also proves verdicts are schedule-independent.
  int schedules{0};
  /// Systematic exploration instead of random schedules: every (plan,
  /// scenario) pair first runs one free round, then a DPOR exploration
  /// (schedsim::Explorer) whose every executed schedule must satisfy the
  /// same invariants. Mutually exclusive with `schedules`.
  bool dpor{false};
  /// Execution bound per DPOR exploration (0 = explorer default).
  std::uint32_t dpor_bound{0};
  /// rank_kill specs appended to every generated plan (sigkill / sigabrt /
  /// hang at a random rank's n-th MPI operation). Only the proc backend
  /// probes rank_kill sites: under the thread backend the specs stay
  /// dormant, which invariant 2 then proves invisible. Under the proc
  /// backend every fired kill must surface as exactly one RankFailureReport
  /// (invariant 4 below).
  int rank_kills{0};
  /// Concurrent (plan, scenario) runs: > 1 executes each pair as one
  /// svc::Session on a work-stealing executor with a private injector,
  /// controller and metrics registry per session. Stats and failure lines
  /// merge in deterministic (plan, scenario) order, so the sweep outcome is
  /// independent of the interleaving.
  int jobs{1};
};

struct SweepStats {
  std::size_t scenarios{0};      ///< scenarios in the (filtered) matrix
  std::size_t runs{0};           ///< faulted runs executed (plans x scenarios)
  std::size_t faulted_runs{0};   ///< runs where at least one fault fired
  std::uint64_t faults_fired{0};
  std::uint64_t faults_unsurfaced{0};   ///< fired but never accounted — invariant 3 violation
  std::size_t verdict_mismatches{0};    ///< unfaulted run diverged from baseline — invariant 2
  std::size_t rank_kill_runs{0};        ///< runs in which a rank_kill fired (proc backend)
  std::size_t rank_failure_reports{0};  ///< supervisor RankFailureReports observed across runs
  std::uint64_t dpor_executions{0};     ///< schedules executed by DPOR explorations
  std::uint64_t dpor_hb_prunes{0};      ///< decisions proven non-racing across explorations
  std::vector<std::string> failures;    ///< human-readable invariant violations

  [[nodiscard]] bool ok() const {
    return faults_unsurfaced == 0 && verdict_mismatches == 0 && failures.empty();
  }
};

/// Classify a finished run from its fired-fault ledger: "clean" (nothing
/// fired), "perturbed" (faults fired, no rank died), or the containment
/// outcome with the signal spelled out — "rank-killed (SIGKILL)",
/// "rank-killed (SIGABRT)", "rank-hang (heartbeat timeout, SIGKILL)".
[[nodiscard]] std::string classify_run(const std::vector<faultsim::FiredFault>& fired);

/// Seed-deterministic random plan: `faults` specs with concrete scopes and
/// site-valid actions, plus `rank_kills` rank_kill specs (the same seed
/// always yields the same plan).
[[nodiscard]] faultsim::FaultPlan make_random_plan(std::uint64_t seed, int faults,
                                                   int rank_kills = 0);

/// Run the sweep. Loads plans into the global faultsim::Injector (clearing it
/// on exit), so it must not race with other injector users.
[[nodiscard]] SweepStats run_fault_sweep(const SweepOptions& options);

}  // namespace testsuite
