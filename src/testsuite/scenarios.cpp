#include "testsuite/scenarios.hpp"

#include <memory>

#include "capi/cuda.hpp"
#include "capi/mpi.hpp"
#include "common/assert.hpp"
#include "faultsim/injector.hpp"
#include "kir/registry.hpp"

namespace testsuite {
namespace {

constexpr std::size_t kCount = 4096;
constexpr std::size_t kSendCount = kCount / 2;

struct SuiteKernels {
  kir::Module module;
  const kir::KernelInfo* writer{};
  const kir::KernelInfo* reader{};
  // Sub-range variants with compiler-known index bounds: the tail kernels
  // touch only [kSendCount, kCount) doubles (disjoint from the exchanged head
  // half), the head kernels only [0, kSendCount) (fully overlapping it).
  const kir::KernelInfo* tail_writer{};
  const kir::KernelInfo* tail_reader{};
  const kir::KernelInfo* head_writer{};
  const kir::KernelInfo* head_reader{};
  std::unique_ptr<kir::KernelRegistry> registry;
  SuiteKernels() {
    constexpr auto kElem = static_cast<std::uint32_t>(sizeof(double));
    kir::Function* w = module.create_function("suite_writer", {true, false});
    w->store(w->gep(w->param(0), w->constant()), w->constant());
    w->ret();
    kir::Function* r = module.create_function("suite_reader", {true, false});
    (void)r->load(r->gep(r->param(0), r->constant()));
    r->ret();
    // One element per thread: the affine analysis proves these race-free
    // (stride 8 = access width), so prove-and-elide can skip their tracking;
    // the interval summaries are unchanged vs the old bounded() scalars.
    const auto make_bounded = [&](const char* name, std::int64_t lo, std::int64_t hi,
                                  bool is_write) {
      kir::Function* fn = module.create_function(name, {true, false});
      const kir::Value idx = fn->thread_idx(lo, hi);
      const kir::Value ptr = fn->gep(fn->param(0), idx, kElem);
      if (is_write) {
        fn->store(ptr, fn->constant(), kElem);
      } else {
        (void)fn->load(ptr, kElem);
      }
      fn->ret();
      return fn;
    };
    kir::Function* tw = make_bounded("suite_tail_writer", kSendCount, kCount - 1, true);
    kir::Function* tr = make_bounded("suite_tail_reader", kSendCount, kCount - 1, false);
    kir::Function* hw = make_bounded("suite_head_writer", 0, kSendCount - 1, true);
    kir::Function* hr = make_bounded("suite_head_reader", 0, kSendCount - 1, false);
    registry = std::make_unique<kir::KernelRegistry>(module);
    writer = registry->lookup(w);
    reader = registry->lookup(r);
    tail_writer = registry->lookup(tw);
    tail_reader = registry->lookup(tr);
    head_writer = registry->lookup(hw);
    head_reader = registry->lookup(hr);
  }
};

const SuiteKernels& kernels() {
  static const SuiteKernels k;
  return k;
}

const kir::KernelInfo& kernel_for(Span span, bool writer) {
  const SuiteKernels& k = kernels();
  switch (span) {
    case Span::kWhole:
      return writer ? *k.writer : *k.reader;
    case Span::kTail:
      return writer ? *k.tail_writer : *k.tail_reader;
    case Span::kHead:
      return writer ? *k.head_writer : *k.head_reader;
  }
  return writer ? *k.writer : *k.reader;
}

double* allocate(Mem mem) {
  double* p = nullptr;
  switch (mem) {
    case Mem::kDevice:
      (void)capi::cuda::malloc_device(&p, kCount);
      break;
    case Mem::kManaged:
      (void)capi::cuda::malloc_managed(&p, kCount);
      break;
    case Mem::kPinned:
      (void)capi::cuda::malloc_host(&p, kCount);
      break;
  }
  return p;
}

void deallocate(Mem mem, double* p) {
  if (mem == Mem::kPinned) {
    (void)capi::cuda::free_host(p);
  } else {
    (void)capi::cuda::free(p);
  }
}

}  // namespace

const char* to_string(Mem m) {
  switch (m) {
    case Mem::kDevice:
      return "device";
    case Mem::kManaged:
      return "managed";
    case Mem::kPinned:
      return "pinned";
  }
  return "?";
}

const char* to_string(StreamKind s) {
  switch (s) {
    case StreamKind::kDefault:
      return "default_stream";
    case StreamKind::kUser:
      return "user_stream";
    case StreamKind::kNonBlocking:
      return "nonblocking_stream";
  }
  return "?";
}

const char* to_string(Sync s) {
  switch (s) {
    case Sync::kNone:
      return "no_sync";
    case Sync::kDevice:
      return "device_sync";
    case Sync::kStream:
      return "stream_sync";
    case Sync::kWrongStream:
      return "wrong_stream_sync";
    case Sync::kEvent:
      return "event_sync";
    case Sync::kEventEarly:
      return "event_recorded_early";
    case Sync::kQuery:
      return "query_busy_wait";
    case Sync::kMemcpy:
      return "memcpy_implicit_sync";
    case Sync::kWait:
      return "wait_before_kernel";
    case Sync::kNoWait:
      return "kernel_before_wait";
    case Sync::kTestLoop:
      return "test_loop_before_kernel";
  }
  return "?";
}

const char* to_string(Span s) {
  switch (s) {
    case Span::kWhole:
      return "whole_span";
    case Span::kTail:
      return "tail_kernel";
    case Span::kHead:
      return "head_kernel";
  }
  return "?";
}

void scenario_rank_main(capi::RankEnv& env, const Scenario& sc) {
  namespace cuda = capi::cuda;
  namespace mpi = capi::mpi;
  // Ranks pair up (2i, 2i+1): even ranks play the producer role, odd ranks
  // the consumer, so one scenario exercises every pair of an N-rank world
  // concurrently. An unpaired trailing rank (odd world size) idles.
  const int rank = env.rank();
  const int partner = rank ^ 1;
  if (partner >= env.size()) {
    return;
  }
  const bool producer = (rank & 1) == 0;
  const auto type = mpisim::Datatype::float64();
  double* buf = allocate(sc.mem);
  if (buf == nullptr) {
    // Only an injected OOM may fail these small allocations. Bail out like a
    // defensive application: the peer's now-unmatched operations are the
    // watchdog's job, not a crash.
    CUSAN_ASSERT_MSG(faultsim::Injector::armed(), "scenario allocation failed without a fault plan");
    return;
  }

  cusim::Stream* stream = nullptr;  // nullptr = default stream
  cusim::Stream* other = nullptr;
  if (sc.stream != StreamKind::kDefault) {
    (void)cuda::stream_create(&stream, sc.stream == StreamKind::kNonBlocking
                                           ? cusim::StreamFlags::kNonBlocking
                                           : cusim::StreamFlags::kDefault);
  }
  if (sc.sync == Sync::kWrongStream) {
    (void)cuda::stream_create(&other, cusim::StreamFlags::kNonBlocking);
  }

  // Racy bodies stay clear of the exchanged byte range — detection runs on
  // the statically derived access summaries (whole-range modes, optionally
  // refined to byte intervals; see DESIGN.md), not on the body's accesses.
  const auto launch_writer = [&] {
    (void)cuda::launch(kernel_for(sc.span, /*writer=*/true), {8, 64}, stream, {buf, nullptr},
                       [buf](const cusim::KernelContext&) { buf[kCount - 1] = 1.0; });
  };
  const auto launch_reader = [&] {
    (void)cuda::launch(kernel_for(sc.span, /*writer=*/false), {8, 64}, stream, {buf, nullptr},
                       [buf](const cusim::KernelContext&) { (void)buf[kCount - 1]; });
  };
  const auto apply_sync = [&] {
    switch (sc.sync) {
      case Sync::kNone:
      case Sync::kEventEarly:  // handled inline at the call site
        break;
      case Sync::kDevice:
        (void)cuda::device_synchronize();
        break;
      case Sync::kStream:
        (void)cuda::stream_synchronize(stream);
        break;
      case Sync::kWrongStream:
        (void)cuda::stream_synchronize(other);
        break;
      case Sync::kEvent: {
        cusim::Event* e = nullptr;
        (void)cuda::event_create(&e);
        (void)cuda::event_record(e, stream);
        (void)cuda::event_synchronize(e);
        (void)cuda::event_destroy(e);
        break;
      }
      case Sync::kQuery: {
        cusim::Stream* target = stream != nullptr ? stream : capi::cuda::default_stream();
        // Spin only while genuinely pending: a sticky device error also ends
        // the wait (otherwise an injected stream error spins forever).
        while (cuda::stream_query(target) == cusim::Error::kNotReady) {
        }
        break;
      }
      case Sync::kMemcpy: {
        double probe = 0.0;
        (void)cuda::memcpy(&probe, buf, sizeof(double), cusim::MemcpyDir::kDefault);
        break;
      }
      default:
        break;
    }
  };

  if (producer) {
    if (sc.dir == Direction::kCudaToMpi) {
      if (sc.sync == Sync::kEventEarly) {
        cusim::Event* e = nullptr;
        (void)cuda::event_create(&e);
        (void)cuda::event_record(e, stream);  // records BEFORE the kernel
        launch_writer();
        (void)cuda::event_synchronize(e);  // does not cover the kernel
        (void)cuda::event_destroy(e);
      } else {
        launch_writer();
        apply_sync();
      }
      (void)mpi::send(env.comm, buf, kSendCount, type, partner, 0);
      (void)cuda::device_synchronize();
    } else {
      // mpi-to-cuda: the producer only produces the message.
      (void)cuda::device_synchronize();
      (void)mpi::send(env.comm, buf, kSendCount, type, partner, 0);
    }
  } else {
    if (sc.dir == Direction::kCudaToMpi) {
      (void)mpi::recv(env.comm, buf, kSendCount, type, partner, 0);
      launch_reader();
      (void)cuda::device_synchronize();
    } else {
      mpisim::Request* req = nullptr;
      (void)mpi::irecv(env.comm, buf, kSendCount, type, partner, 0, &req);
      switch (sc.sync) {
        case Sync::kWait:
          (void)mpi::wait(env.comm, &req);
          launch_reader();
          break;
        case Sync::kTestLoop: {
          bool done = false;
          while (!done) {
            // A deadlock verdict (or injected failure) ends the poll loop;
            // the leaked request becomes a MUST leak report.
            if (mpi::test(env.comm, &req, &done) != mpisim::MpiError::kSuccess) {
              break;
            }
          }
          launch_reader();
          break;
        }
        case Sync::kNoWait:
        default:
          launch_reader();  // RACE: the request may still write the buffer
          (void)mpi::wait(env.comm, &req);
          break;
      }
      (void)cuda::device_synchronize();
    }
  }

  if (other != nullptr) {
    (void)cuda::stream_destroy(other);
  }
  if (stream != nullptr) {
    (void)cuda::stream_destroy(stream);
  }
  deallocate(sc.mem, buf);
}

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> out;
  const auto add_mode = [&out](Direction dir, Mem mem, StreamKind stream, Sync sync,
                               cusim::DefaultStreamMode mode, bool expect_race) {
    Scenario sc;
    sc.dir = dir;
    sc.mem = mem;
    sc.stream = stream;
    sc.sync = sync;
    sc.stream_mode = mode;
    sc.expect_race = expect_race;
    sc.name = std::string(dir == Direction::kCudaToMpi ? "cuda_to_mpi" : "mpi_to_cuda") + "__" +
              to_string(mem) + "__" + to_string(stream) + "__" + to_string(sync) +
              (mode == cusim::DefaultStreamMode::kPerThread ? "__per_thread" : "") +
              (expect_race ? "__racy" : "__ok");
    out.push_back(std::move(sc));
  };
  const auto add = [&add_mode](Direction dir, Mem mem, StreamKind stream, Sync sync,
                               bool expect_race) {
    add_mode(dir, mem, stream, sync, cusim::DefaultStreamMode::kLegacy, expect_race);
  };

  // cuda-to-mpi: direction of paper Fig. 4(i).
  for (const Mem mem : {Mem::kDevice, Mem::kManaged}) {
    for (const StreamKind stream :
         {StreamKind::kDefault, StreamKind::kUser, StreamKind::kNonBlocking}) {
      add(Direction::kCudaToMpi, mem, stream, Sync::kNone, true);
      add(Direction::kCudaToMpi, mem, stream, Sync::kDevice, false);
      add(Direction::kCudaToMpi, mem, stream, Sync::kStream, false);
      add(Direction::kCudaToMpi, mem, stream, Sync::kEvent, false);
      add(Direction::kCudaToMpi, mem, stream, Sync::kQuery, false);
      // Blocking cudaMemcpy runs on the default stream: legacy barriers cover
      // the default and blocking user streams, but NOT non-blocking streams.
      add(Direction::kCudaToMpi, mem, stream, Sync::kMemcpy,
          stream == StreamKind::kNonBlocking);
    }
    add(Direction::kCudaToMpi, mem, StreamKind::kNonBlocking, Sync::kWrongStream, true);
    add(Direction::kCudaToMpi, mem, StreamKind::kUser, Sync::kEventEarly, true);
  }
  // Pinned host memory is also exchanged directly (zero-copy kernels).
  add(Direction::kCudaToMpi, Mem::kPinned, StreamKind::kDefault, Sync::kNone, true);
  add(Direction::kCudaToMpi, Mem::kPinned, StreamKind::kDefault, Sync::kDevice, false);

  // mpi-to-cuda: direction of paper Fig. 4(ii).
  for (const Mem mem : {Mem::kDevice, Mem::kManaged}) {
    for (const StreamKind stream : {StreamKind::kDefault, StreamKind::kUser}) {
      add(Direction::kMpiToCuda, mem, stream, Sync::kWait, false);
      add(Direction::kMpiToCuda, mem, stream, Sync::kNoWait, true);
      add(Direction::kMpiToCuda, mem, stream, Sync::kTestLoop, false);
    }
  }
  add(Direction::kMpiToCuda, Mem::kPinned, StreamKind::kDefault, Sync::kNoWait, true);
  add(Direction::kMpiToCuda, Mem::kPinned, StreamKind::kDefault, Sync::kWait, false);

  // Per-thread default stream mode (§VI-B): the blocking cudaMemcpy on the
  // default stream no longer forms a legacy barrier with a user stream, so
  // the implicit-sync pattern that is clean under legacy semantics races.
  add_mode(Direction::kCudaToMpi, Mem::kDevice, StreamKind::kUser, Sync::kMemcpy,
           cusim::DefaultStreamMode::kPerThread, true);
  // Explicit synchronization still works in per-thread mode.
  add_mode(Direction::kCudaToMpi, Mem::kDevice, StreamKind::kUser, Sync::kStream,
           cusim::DefaultStreamMode::kPerThread, false);
  add_mode(Direction::kCudaToMpi, Mem::kDevice, StreamKind::kDefault, Sync::kDevice,
           cusim::DefaultStreamMode::kPerThread, false);
  add_mode(Direction::kCudaToMpi, Mem::kDevice, StreamKind::kDefault, Sync::kNone,
           cusim::DefaultStreamMode::kPerThread, true);
  add_mode(Direction::kMpiToCuda, Mem::kDevice, StreamKind::kDefault, Sync::kNoWait,
           cusim::DefaultStreamMode::kPerThread, true);
  add_mode(Direction::kMpiToCuda, Mem::kDevice, StreamKind::kDefault, Sync::kWait,
           cusim::DefaultStreamMode::kPerThread, false);

  // Byte-interval refinement scenarios (beyond the paper; its §VI names
  // sub-range precision as future work). The tail kernels provably touch
  // only the non-exchanged half of the buffer, so under interval-precise
  // annotation the unsynchronized overlap disappears — while the paper's
  // whole-range annotation flags the same program (a documented false
  // positive the refinement removes). Head kernels overlap the exchanged
  // half: the missing synchronization still fires under intervals.
  const auto add_span = [&out](Direction dir, Mem mem, StreamKind stream, Sync sync, Span span,
                               Precision precision, bool expect_race) {
    Scenario sc;
    sc.dir = dir;
    sc.mem = mem;
    sc.stream = stream;
    sc.sync = sync;
    sc.span = span;
    sc.precision = precision;
    sc.expect_race = expect_race;
    sc.name = std::string(dir == Direction::kCudaToMpi ? "cuda_to_mpi" : "mpi_to_cuda") + "__" +
              to_string(mem) + "__" + to_string(stream) + "__" + to_string(sync) + "__" +
              to_string(span) +
              (precision == Precision::kWholeRange ? "__whole_range" : "__intervals") +
              (expect_race ? "__racy" : "__ok");
    out.push_back(std::move(sc));
  };
  for (const Mem mem : {Mem::kDevice, Mem::kManaged}) {
    for (const StreamKind stream : {StreamKind::kDefault, StreamKind::kUser}) {
      // cuda-to-mpi: unsynchronized kernel before MPI_Send.
      add_span(Direction::kCudaToMpi, mem, stream, Sync::kNone, Span::kTail,
               Precision::kIntervals, false);
      add_span(Direction::kCudaToMpi, mem, stream, Sync::kNone, Span::kTail,
               Precision::kWholeRange, true);
      add_span(Direction::kCudaToMpi, mem, stream, Sync::kNone, Span::kHead,
               Precision::kIntervals, true);
      // mpi-to-cuda: kernel launched before MPI_Wait.
      add_span(Direction::kMpiToCuda, mem, stream, Sync::kNoWait, Span::kTail,
               Precision::kIntervals, false);
      add_span(Direction::kMpiToCuda, mem, stream, Sync::kNoWait, Span::kTail,
               Precision::kWholeRange, true);
      add_span(Direction::kMpiToCuda, mem, stream, Sync::kNoWait, Span::kHead,
               Precision::kIntervals, true);
    }
  }

  return out;
}

ScenarioOutcome run_scenario_outcome(const Scenario& scenario) {
  return run_scenario_outcome(scenario, rsan::RuntimeConfig{}.use_shadow_fast_path);
}

ScenarioOutcome run_scenario_outcome(const Scenario& scenario, bool use_shadow_fast_path) {
  return run_scenario_outcome(scenario, use_shadow_fast_path, std::chrono::milliseconds(0));
}

ScenarioOutcome run_scenario_outcome(const Scenario& scenario, bool use_shadow_fast_path,
                                     std::chrono::milliseconds watchdog_timeout) {
  return run_scenario_outcome(scenario, use_shadow_fast_path, watchdog_timeout,
                              cusan::default_prove_elide());
}

ScenarioOutcome run_scenario_outcome(const Scenario& scenario, bool use_shadow_fast_path,
                                     std::chrono::milliseconds watchdog_timeout,
                                     cusan::ProveElide prove_elide) {
  capi::SessionConfig config;
  config.ranks = capi::default_ranks();
  config.tools = capi::make_tool_config(capi::Flavor::kMustCusan);
  config.tools.cusan_config.use_access_intervals =
      scenario.precision == Precision::kIntervals;
  config.tools.cusan_config.prove_elide = prove_elide;
  config.tools.rsan_config.use_shadow_fast_path = use_shadow_fast_path;
  config.device_profile.default_stream_mode = scenario.stream_mode;
  config.watchdog_timeout = watchdog_timeout;
  const auto results = capi::run_session(
      config, [&](capi::RankEnv& env) { scenario_rank_main(env, scenario); });
  ScenarioOutcome outcome;
  outcome.races = capi::total_races(results);
  for (const auto& result : results) {
    outcome.tracked_bytes +=
        result.tsan_counters.read_range_bytes + result.tsan_counters.write_range_bytes;
    outcome.fastpath_hits +=
        result.tsan_counters.fastpath_range_hits + result.tsan_counters.fastpath_block_hits;
    outcome.fastpath_granules_elided += result.tsan_counters.fastpath_granules_elided;
    outcome.elided_launches += result.cusan_counters.proof_elided_launches;
    outcome.elided_bytes += result.cusan_counters.proof_elided_bytes;
  }
  return outcome;
}

std::size_t run_scenario(const Scenario& scenario) {
  return run_scenario_outcome(scenario).races;
}

}  // namespace testsuite
