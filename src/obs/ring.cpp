#include "obs/ring.hpp"

#include <cstring>
#include <mutex>

#include "common/clock.hpp"

namespace obs {

std::atomic<bool> g_tracing_enabled{false};

namespace {

std::atomic<EventRing*> g_rings[kMaxRings]{};
std::mutex g_ring_mutex;

// Virtual clock for deterministic exporter tests.
std::atomic<bool> g_virtual_clock{false};
std::atomic<std::uint64_t> g_virtual_next{0};
std::atomic<std::uint64_t> g_virtual_step{0};

thread_local int t_bound_rank = -1;

/// rank -1 (unattributed) maps to index 0; ranks beyond the table clamp
/// into the unattributed ring rather than dropping events.
int ring_index(int rank) {
  const int index = rank + 1;
  return index >= 1 && index < kMaxRings ? index : 0;
}

void copy_name(char (&dst)[42], const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::strncpy(dst, src, sizeof(dst) - 1);
  dst[sizeof(dst) - 1] = '\0';
}

}  // namespace

EventRing::EventRing(std::size_t capacity) : slots_(capacity > 0 ? capacity : 1) {}

void EventRing::emit(const Event& event) {
  const std::uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[n % slots_.size()];
  slot.seq.store(2 * n + 1, std::memory_order_relaxed);
  slot.event = event;
  slot.seq.store(2 * (n + 1), std::memory_order_release);
}

std::uint64_t EventRing::total() const { return next_.load(std::memory_order_relaxed); }

std::uint64_t EventRing::dropped() const {
  const std::uint64_t n = total();
  return n > slots_.size() ? n - slots_.size() : 0;
}

std::vector<Event> EventRing::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > slots_.size() ? end - slots_.size() : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t n = begin; n < end; ++n) {
    const Slot& slot = slots_[n % slots_.size()];
    if (slot.seq.load(std::memory_order_acquire) != 2 * (n + 1)) {
      continue;  // torn or already overwritten by a racing writer
    }
    Event copy = slot.event;
    if (slot.seq.load(std::memory_order_acquire) != 2 * (n + 1)) {
      continue;
    }
    out.push_back(copy);
  }
  return out;
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

EventRing& ring_for_rank(int rank) {
  const int index = ring_index(rank);
  EventRing* ring = g_rings[index].load(std::memory_order_acquire);
  if (ring != nullptr) {
    return *ring;
  }
  std::lock_guard<std::mutex> lock(g_ring_mutex);
  ring = g_rings[index].load(std::memory_order_relaxed);
  if (ring == nullptr) {
    ring = new EventRing();
    g_rings[index].store(ring, std::memory_order_release);
  }
  return *ring;
}

std::vector<int> active_ring_ranks() {
  std::vector<int> ranks;
  for (int index = 0; index < kMaxRings; ++index) {
    EventRing* ring = g_rings[index].load(std::memory_order_acquire);
    if (ring != nullptr && ring->total() > 0) {
      ranks.push_back(index - 1);
    }
  }
  return ranks;
}

void reset_rings() {
  std::lock_guard<std::mutex> lock(g_ring_mutex);
  for (auto& slot : g_rings) {
    delete slot.exchange(nullptr, std::memory_order_acq_rel);
  }
}

void bind_rank(int rank) { t_bound_rank = rank; }

int bound_rank() { return t_bound_rank; }

std::uint64_t trace_now_ns() {
  if (g_virtual_clock.load(std::memory_order_relaxed)) {
    return g_virtual_next.fetch_add(g_virtual_step.load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
  }
  return common::now_ns();
}

void use_virtual_clock(std::uint64_t start_ns, std::uint64_t step_ns) {
  g_virtual_next.store(start_ns, std::memory_order_relaxed);
  g_virtual_step.store(step_ns, std::memory_order_relaxed);
  g_virtual_clock.store(true, std::memory_order_relaxed);
}

void use_wall_clock() { g_virtual_clock.store(false, std::memory_order_relaxed); }

void emit_instant(EventKind kind, std::uint32_t track, const char* name, std::uint64_t arg) {
  if (!tracing_enabled()) {
    return;
  }
  emit_instant(t_bound_rank, kind, track, name, arg);
}

void emit_instant(int rank, EventKind kind, std::uint32_t track, const char* name,
                  std::uint64_t arg) {
  if (!tracing_enabled()) {
    return;
  }
  Event event;
  event.ts_ns = trace_now_ns();
  event.dur_ns = 0;
  event.arg = arg;
  event.rank = rank;
  event.track = track;
  event.kind = kind;
  copy_name(event.name, name);
  ring_for_rank(rank).emit(event);
}

void emit_event(const Event& event) {
  if (!tracing_enabled()) {
    return;
  }
  ring_for_rank(event.rank).emit(event);
}

Span::Span(EventKind kind, std::uint32_t track, const char* name, std::uint64_t arg)
    : Span(t_bound_rank, kind, track, name, arg) {}

Span::Span(int rank, EventKind kind, std::uint32_t track, const char* name, std::uint64_t arg) {
  if (!tracing_enabled()) {
    return;
  }
  active_ = true;
  event_.ts_ns = trace_now_ns();
  event_.arg = arg;
  event_.rank = rank;
  event_.track = track;
  event_.kind = kind;
  copy_name(event_.name, name);
}

Span::~Span() {
  if (!active_) {
    return;
  }
  const std::uint64_t end = trace_now_ns();
  event_.dur_ns = end > event_.ts_ns ? end - event_.ts_ns : 1;
  ring_for_rank(event_.rank).emit(event_);
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kKernel:
      return "kernel";
    case EventKind::kMemcpy:
      return "memcpy";
    case EventKind::kMemset:
      return "memset";
    case EventKind::kPrefetch:
      return "prefetch";
    case EventKind::kHostFunc:
      return "host_func";
    case EventKind::kSync:
      return "sync";
    case EventKind::kStreamOp:
      return "stream";
    case EventKind::kEventOp:
      return "event";
    case EventKind::kAlloc:
      return "alloc";
    case EventKind::kMpi:
      return "mpi";
    case EventKind::kRequest:
      return "request";
    case EventKind::kDiagnostic:
      return "diagnostic";
    case EventKind::kTrace:
      return "trace";
    case EventKind::kSchedule:
      return "schedule";
  }
  return "unknown";
}

}  // namespace obs
