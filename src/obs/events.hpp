// Typed events for the observability substrate: every producer (cusim stream
// workers, mpisim p2p/collective waits, cusan intercepts, must request
// fibers, faultsim, diagnostics) records the same fixed-size Event into a
// per-rank ring (obs/ring.hpp). Events carry a monotonic timestamp
// (common::now_ns epoch), a (rank, track) correlation id and an optional
// 64-bit payload; the Perfetto exporter maps ranks to processes and tracks
// to threads.
#pragma once

#include <cstdint>

namespace obs {

/// Broad event category; becomes the Chrome trace "cat" field.
enum class EventKind : std::uint16_t {
  kKernel = 0,   ///< kernel execution / launch
  kMemcpy,       ///< memcpy (any direction)
  kMemset,       ///< memset
  kPrefetch,     ///< managed-memory prefetch
  kHostFunc,     ///< cudaLaunchHostFunc callback
  kSync,         ///< stream/device/event synchronization
  kStreamOp,     ///< stream create/destroy, query
  kEventOp,      ///< event create/record/destroy
  kAlloc,        ///< malloc/free
  kMpi,          ///< MPI call (p2p, collective, wait family)
  kRequest,      ///< nonblocking-request fiber lifetime
  kDiagnostic,   ///< race/report/deadlock/fault diagnostic marker
  kTrace,        ///< generic intercepted-call marker (cusan::Trace)
  kSchedule,     ///< schedule-controller decision (site; arg packs seq/candidates/chosen)
};

[[nodiscard]] const char* to_string(EventKind kind);

/// Track ids partition a rank's timeline into exporter "threads".
/// 0 is the host thread; 1..999 are device streams (1 + stream ordinal);
/// 1000+ are MPI request fibers.
inline constexpr std::uint32_t kHostTrack = 0;
inline constexpr std::uint32_t kStreamTrackBase = 1;
inline constexpr std::uint32_t kRequestTrackBase = 1000;

[[nodiscard]] constexpr std::uint32_t stream_track(std::uint32_t stream_ordinal) {
  return kStreamTrackBase + stream_ordinal;
}

[[nodiscard]] constexpr std::uint32_t request_track(std::uint32_t fiber_ordinal) {
  return kRequestTrackBase + fiber_ordinal;
}

/// One ring entry. `dur_ns == 0` marks an instant; otherwise a complete span
/// starting at `ts_ns`. The label is truncated into a fixed buffer so slots
/// stay trivially copyable (seqlock-guarded, see EventRing).
struct Event {
  std::uint64_t ts_ns{0};
  std::uint64_t dur_ns{0};
  std::uint64_t arg{0};   ///< payload: bytes moved, ticket, report id, ...
  std::int32_t rank{-1};  ///< -1 = unattributed
  std::uint32_t track{kHostTrack};
  EventKind kind{EventKind::kTrace};
  char name[42]{};
};

}  // namespace obs
