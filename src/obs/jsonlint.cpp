#include "obs/jsonlint.hpp"

#include <cctype>
#include <cstdlib>

#include "common/format.hpp"
#include "obs/events.hpp"

namespace obs::jsonlint {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool run(Value* out) {
    skip_ws();
    if (!parse_value(out, 0)) {
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = common::format("{} at offset {}", message, pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) {
      return fail(common::format("expected '{}'", c));
    }
    ++pos_;
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) {
      return fail("nesting too deep");
    }
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out->kind = Value::Kind::kString;
        return parse_string(&out->string);
      case 't':
      case 'f':
        return parse_literal(out);
      case 'n':
        out->kind = Value::Kind::kNull;
        return parse_keyword("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail(common::format("expected '{}'", std::string(word)));
    }
    pos_ += word.size();
    return true;
  }

  bool parse_literal(Value* out) {
    out->kind = Value::Kind::kBool;
    if (peek() == 't') {
      out->boolean = true;
      return parse_keyword("true");
    }
    out->boolean = false;
    return parse_keyword("false");
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit expected after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit expected in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    out->kind = Value::Kind::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) {
      return false;
    }
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // Lint-grade: keep BMP code points as UTF-8, no surrogate pairing.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
  }

  bool parse_array(Value* out, int depth) {
    if (!consume('[')) {
      return false;
    }
    out->kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      auto element = std::make_shared<Value>();
      skip_ws();
      if (!parse_value(element.get(), depth + 1)) {
        return false;
      }
      out->array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(Value* out, int depth) {
    if (!consume('{')) {
      return false;
    }
    out->kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      skip_ws();
      auto member = std::make_shared<Value>();
      if (!parse_value(member.get(), depth + 1)) {
        return false;
      }
      out->object[key] = std::move(member);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_{0};
};

bool check(bool condition, const std::string& message, std::string* error) {
  if (!condition && error != nullptr) {
    *error = message;
  }
  return condition;
}

/// Every category the exporter can write is an EventKind name (incl. the
/// schedule-decision kind). An unknown cat means a producer bypassed the
/// typed Event path — flag it so schema drift surfaces in CI.
[[nodiscard]] bool known_category(const std::string& cat) {
  for (std::uint16_t k = 0; k <= static_cast<std::uint16_t>(EventKind::kSchedule); ++k) {
    if (cat == to_string(static_cast<EventKind>(k))) {
      return true;
    }
  }
  return false;
}

}  // namespace

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it != object.end() ? it->second.get() : nullptr;
}

bool parse(std::string_view text, Value* out, std::string* error) {
  return Parser(text, error).run(out);
}

bool validate_chrome_trace(std::string_view text, std::string* error, std::size_t* event_count) {
  Value root;
  if (!parse(text, &root, error)) {
    return false;
  }
  if (!check(root.is(Value::Kind::kObject), "top level is not an object", error)) {
    return false;
  }
  const Value* events = root.get("traceEvents");
  if (!check(events != nullptr && events->is(Value::Kind::kArray),
             "missing 'traceEvents' array", error)) {
    return false;
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Value& event = *events->array[i];
    const std::string at = common::format("traceEvents[{}]", i);
    if (!check(event.is(Value::Kind::kObject), at + " is not an object", error)) {
      return false;
    }
    const Value* ph = event.get("ph");
    if (!check(ph != nullptr && ph->is(Value::Kind::kString), at + " missing string 'ph'",
               error)) {
      return false;
    }
    const Value* pid = event.get("pid");
    if (!check(pid != nullptr && pid->is(Value::Kind::kNumber), at + " missing numeric 'pid'",
               error)) {
      return false;
    }
    const Value* name = event.get("name");
    if (!check(name != nullptr && name->is(Value::Kind::kString), at + " missing string 'name'",
               error)) {
      return false;
    }
    if (ph->string == "M") {
      if (name->string != "process_name" && name->string != "thread_name") {
        continue;  // other metadata kinds are legal in the wild
      }
      const Value* args = event.get("args");
      const Value* value = args != nullptr ? args->get("name") : nullptr;
      if (!check(value != nullptr && value->is(Value::Kind::kString),
                 at + " metadata missing args.name", error)) {
        return false;
      }
      continue;
    }
    if (ph->string == "X" || ph->string == "i") {
      ++count;
      const Value* cat = event.get("cat");
      if (!check(cat != nullptr && cat->is(Value::Kind::kString), at + " missing string 'cat'",
                 error) ||
          !check(known_category(cat->string),
                 at + common::format(" unknown event category '{}'", cat->string), error)) {
        return false;
      }
      const Value* ts = event.get("ts");
      const Value* tid = event.get("tid");
      if (!check(ts != nullptr && ts->is(Value::Kind::kNumber), at + " missing numeric 'ts'",
                 error) ||
          !check(tid != nullptr && tid->is(Value::Kind::kNumber), at + " missing numeric 'tid'",
                 error)) {
        return false;
      }
      if (ph->string == "X") {
        const Value* dur = event.get("dur");
        if (!check(dur != nullptr && dur->is(Value::Kind::kNumber),
                   at + " missing numeric 'dur'", error)) {
          return false;
        }
      }
      continue;
    }
    // Other phases (B/E, counters, flows) are valid trace_event but this
    // exporter never writes them — flag so regressions surface.
    if (!check(false, at + common::format(" unexpected phase '{}'", ph->string), error)) {
      return false;
    }
  }
  if (event_count != nullptr) {
    *event_count = count;
  }
  return true;
}

bool validate_metrics_json(std::string_view text, std::string* error, std::size_t* metric_count) {
  Value root;
  if (!parse(text, &root, error)) {
    return false;
  }
  if (!check(root.is(Value::Kind::kObject), "top level is not an object", error)) {
    return false;
  }
  for (const auto& [key, value] : root.object) {
    if (!check(value->is(Value::Kind::kNumber),
               common::format("metric '{}' is not a number", key), error)) {
      return false;
    }
  }
  if (metric_count != nullptr) {
    *metric_count = root.object.size();
  }
  return true;
}

}  // namespace obs::jsonlint
