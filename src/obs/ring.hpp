// Lock-light per-rank event rings. The discipline mirrors faultsim's
// injector hooks: when tracing is disabled every emit helper is exactly one
// relaxed atomic load (bench/obs_guard.hpp asserts this stays true). When
// enabled, an emit claims a slot with one relaxed fetch_add and publishes the
// event through a per-slot seqlock, so producers never take a mutex and a
// full ring simply overwrites the oldest entries (drop-counted).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/events.hpp"

namespace obs {

inline constexpr std::size_t kDefaultRingCapacity = 1u << 14;
/// Ranks are clamped to [2, 64] by capi::default_ranks(); one extra ring
/// catches unattributed (rank < 0) events.
inline constexpr int kMaxRings = 65;

class EventRing {
 public:
  explicit EventRing(std::size_t capacity = kDefaultRingCapacity);

  /// Claim a slot and publish the event (seqlock-stamped). Thread-safe.
  void emit(const Event& event);

  /// Events ever emitted (including overwritten ones).
  [[nodiscard]] std::uint64_t total() const;
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Copy the surviving events in emission order. Entries caught mid-write
  /// (torn) or overwritten during the scan are skipped.
  [[nodiscard]] std::vector<Event> snapshot() const;

 private:
  struct Slot {
    /// 0 = empty; odd = write in progress; 2*(n+1) = claim n published.
    std::atomic<std::uint64_t> seq{0};
    Event event{};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// True when span/instant emission is live. One relaxed load: this is the
/// whole cost of every obs hook in a run without CUSAN_TRACE.
[[nodiscard]] inline bool tracing_enabled() {
  extern std::atomic<bool> g_tracing_enabled;
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled);

/// Ring for one rank, created lazily on first use (rank < 0 or beyond the
/// ring table shares the unattributed ring). Never returns null.
[[nodiscard]] EventRing& ring_for_rank(int rank);

/// Ranks (plus -1 for unattributed) that own a non-empty ring.
[[nodiscard]] std::vector<int> active_ring_ranks();

/// Drop all rings (start of a session; no producers may be live).
void reset_rings();

/// Bind the calling thread to a rank so emit helpers attribute events
/// without threading the rank through every call site.
void bind_rank(int rank);
[[nodiscard]] int bound_rank();

/// Timestamp source for events: common::now_ns(), or — for deterministic
/// golden-file tests — a virtual clock that advances `step_ns` per read.
[[nodiscard]] std::uint64_t trace_now_ns();
void use_virtual_clock(std::uint64_t start_ns, std::uint64_t step_ns);
void use_wall_clock();

/// Emit an instant on the bound rank (no-op unless tracing is enabled).
void emit_instant(EventKind kind, std::uint32_t track, const char* name, std::uint64_t arg = 0);
/// Emit an instant on an explicit rank (worker threads, mpisim).
void emit_instant(int rank, EventKind kind, std::uint32_t track, const char* name,
                  std::uint64_t arg = 0);
/// Emit a pre-built event (exporter tests, request-fiber spans with
/// externally measured durations).
void emit_event(const Event& event);

/// RAII span: stamps start on construction, emits a complete event on
/// destruction. Construction when tracing is disabled costs one relaxed
/// load and leaves the span inert.
class Span {
 public:
  /// Attribute to the thread's bound rank.
  Span(EventKind kind, std::uint32_t track, const char* name, std::uint64_t arg = 0);
  /// Attribute to an explicit rank.
  Span(int rank, EventKind kind, std::uint32_t track, const char* name, std::uint64_t arg = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Update the payload before the span closes (e.g. bytes actually moved).
  void set_arg(std::uint64_t arg) { event_.arg = arg; }

 private:
  bool active_{false};
  Event event_{};
};

}  // namespace obs
