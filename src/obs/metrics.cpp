#include "obs/metrics.hpp"

#include <vector>

#include "common/format.hpp"
#include "common/memstats.hpp"

namespace obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricsRegistry() {
  // Peak RSS rides along in every snapshot so memory tables (EXPERIMENTS.md)
  // come out of the registry instead of being hand-copied.
  providers_["process.memstats"] = [](MetricsSnapshot& snapshot) {
    const auto stats = common::read_memstats();
    snapshot["process.rss_bytes"] = stats.rss_bytes;
    snapshot["process.rss_peak_bytes"] = stats.rss_peak_bytes;
  };
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(std::string(name)), std::forward_as_tuple())
             .first;
  }
  return it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, std::uint64_t value) {
  counter(name).set(value);
}

void MetricsRegistry::register_provider(const std::string& name, Provider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_[name] = std::move(provider);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::vector<Provider> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : counters_) {
      out[name] = value.value();
    }
    providers.reserve(providers_.size());
    for (const auto& [name, provider] : providers_) {
      providers.push_back(provider);
    }
  }
  // Providers run unlocked: they may touch other subsystems that in turn
  // create counters.
  for (const auto& provider : providers) {
    provider(out);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::diff(const MetricsSnapshot& later,
                                      const MetricsSnapshot& earlier) {
  MetricsSnapshot out;
  for (const auto& [name, value] : later) {
    const auto it = earlier.find(name);
    const std::uint64_t before = it != earlier.end() ? it->second : 0;
    out[name] = value >= before ? value - before : 0;
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, value] : counters_) {
    value.set(0);
  }
}

std::string MetricsRegistry::to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += common::format("  \"{}\": {}", name, value);
  }
  out += "\n}\n";
  return out;
}

}  // namespace obs
