#include "obs/metrics.hpp"

#include <vector>

#include "common/format.hpp"
#include "common/memstats.hpp"
#include "common/thread_context.hpp"

namespace obs {

namespace {

// The calling thread's session-scoped registry (null: use the global one).
// constinit + trivial type keeps the TLS access to one load on hot-ish
// paths; propagated into spawned workers via the ThreadContext slot below.
constinit thread_local MetricsRegistry* t_current_registry = nullptr;

const std::size_t kRegistrySlot = common::ThreadContext::register_slot(
    [] { return static_cast<void*>(t_current_registry); },
    [](void* value) { t_current_registry = static_cast<MetricsRegistry*>(value); });

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  MetricsRegistry* current = t_current_registry;
  return current != nullptr ? *current : global();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

bool MetricsRegistry::is_scoped() { return t_current_registry != nullptr; }

MetricsRegistry::Scope::Scope(MetricsRegistry* registry) : previous_(t_current_registry) {
  t_current_registry = registry;
  (void)kRegistrySlot;
}

MetricsRegistry::Scope::~Scope() { t_current_registry = previous_; }

MetricsRegistry::MetricsRegistry() {
  // Peak RSS rides along in every snapshot so memory tables (EXPERIMENTS.md)
  // come out of the registry instead of being hand-copied.
  providers_["process.memstats"] = [](MetricsSnapshot& snapshot) {
    const auto stats = common::read_memstats();
    snapshot["process.rss_bytes"] = stats.rss_bytes;
    snapshot["process.rss_peak_bytes"] = stats.rss_peak_bytes;
  };
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(std::string(name)), std::forward_as_tuple())
             .first;
  }
  return it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, std::uint64_t value) {
  counter(name).set(value);
}

void MetricsRegistry::register_provider(const std::string& name, Provider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_[name] = std::move(provider);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::vector<Provider> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : counters_) {
      out[name] = value.value();
    }
    providers.reserve(providers_.size());
    for (const auto& [name, provider] : providers_) {
      providers.push_back(provider);
    }
  }
  // Providers run unlocked: they may touch other subsystems that in turn
  // create counters.
  for (const auto& provider : providers) {
    provider(out);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::diff(const MetricsSnapshot& later,
                                      const MetricsSnapshot& earlier) {
  MetricsSnapshot out;
  for (const auto& [name, value] : later) {
    const auto it = earlier.find(name);
    const std::uint64_t before = it != earlier.end() ? it->second : 0;
    out[name] = value >= before ? value - before : 0;
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, value] : counters_) {
    value.set(0);
  }
}

std::string MetricsRegistry::to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += common::format("  \"{}\": {}", name, value);
  }
  out += "\n}\n";
  return out;
}

}  // namespace obs
