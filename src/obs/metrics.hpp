// Central metrics registry: one namespace of named monotonic counters and
// gauges replacing the per-subsystem counters structs (cusan, rsan, mpisim,
// faultsim). Hot paths hold a `Counter&` handle (stable address, relaxed
// atomic add — never a map lookup); consumers take snapshots, diff them
// across a region of interest, and export JSON. Providers let subsystems
// contribute computed values (peak RSS, fault-ledger state) at snapshot time.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace obs {

class Counter {
 public:
  void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  void set(std::uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Name -> value at one point in time (sorted, so JSON export is stable).
using MetricsSnapshot = std::map<std::string, std::uint64_t>;

class MetricsRegistry {
 public:
  /// A fresh, empty registry (session-scoped use). The process.memstats
  /// provider is pre-registered like on the global registry.
  MetricsRegistry();

  /// The calling thread's current registry: the session-scoped one installed
  /// by a Scope (svc::Session), else the process-global registry. Threads
  /// never bound to a session always see the global registry — exactly the
  /// pre-service behavior.
  static MetricsRegistry& instance();

  /// The process-global registry, regardless of any thread binding.
  static MetricsRegistry& global();

  /// True when the calling thread is bound to a session-scoped registry.
  [[nodiscard]] static bool is_scoped();

  /// Bind `registry` as the calling thread's current registry (nullptr: back
  /// to the global). The binding is thread-local and propagates to spawned
  /// workers via common::ThreadContext.
  class Scope {
   public:
    explicit Scope(MetricsRegistry* registry);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    MetricsRegistry* previous_;
  };

  /// Find-or-create a counter. The returned reference stays valid for the
  /// process lifetime — cache it; never call this on a hot path.
  [[nodiscard]] Counter& counter(std::string_view name);

  /// Convenience: overwrite a gauge-style value.
  void set_gauge(std::string_view name, std::uint64_t value);

  /// Providers run at snapshot time and may add/overwrite entries.
  /// Re-registering under the same name replaces the previous provider.
  using Provider = std::function<void(MetricsSnapshot&)>;
  void register_provider(const std::string& name, Provider provider);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// later - earlier, per key; keys only in `later` keep their value, keys
  /// only in `earlier` are dropped. Underflow clamps to 0 (gauges may move
  /// both ways).
  [[nodiscard]] static MetricsSnapshot diff(const MetricsSnapshot& later,
                                            const MetricsSnapshot& earlier);

  /// Zero every registered counter (providers are unaffected).
  void reset();

  [[nodiscard]] static std::string to_json(const MetricsSnapshot& snapshot);

 private:
  mutable std::mutex mutex_;
  // std::map: node-based, so Counter addresses are stable across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Provider> providers_;
};

/// Shorthand for MetricsRegistry::instance().counter(name).
[[nodiscard]] inline Counter& metric(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}

}  // namespace obs
