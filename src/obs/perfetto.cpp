#include "obs/perfetto.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/format.hpp"
#include "obs/ring.hpp"

namespace obs {

namespace {

/// pid for events that never got a rank attribution.
constexpr int kUnattributedPid = 1000000;

int rank_pid(int rank) { return rank >= 0 ? rank : kUnattributedPid; }

std::string escape_json(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Chrome trace timestamps are microseconds; keep nanosecond resolution as
/// a fixed three-digit fraction (integer math, so golden files are stable).
std::string us_from_ns(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string track_name(std::uint32_t track) {
  if (track == kHostTrack) {
    return "host";
  }
  if (track >= kRequestTrackBase) {
    return common::format("mpi request fiber {}", track - kRequestTrackBase);
  }
  return common::format("stream {}", track - kStreamTrackBase);
}

void append_metadata(std::string& out, int pid, const std::string& process,
                     const std::set<std::uint32_t>& tracks, bool& first) {
  auto emit = [&](const std::string& line) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += line;
  };
  emit(common::format(
      R"(  {"ph":"M","pid":{},"tid":0,"name":"process_name","args":{"name":"{}"}})", pid,
      process));
  for (const std::uint32_t track : tracks) {
    emit(common::format(
        R"(  {"ph":"M","pid":{},"tid":{},"name":"thread_name","args":{"name":"{}"}})", pid,
        track, track_name(track)));
  }
}

void append_event(std::string& out, int pid, const Event& event, bool& first) {
  if (!first) {
    out += ",\n";
  }
  first = false;
  const std::string name = escape_json(event.name[0] != '\0' ? event.name : to_string(event.kind));
  if (event.dur_ns > 0) {
    out += common::format(
        R"(  {"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{"arg":{}}})",
        name, to_string(event.kind), us_from_ns(event.ts_ns), us_from_ns(event.dur_ns), pid,
        event.track, event.arg);
  } else {
    out += common::format(
        R"(  {"name":"{}","cat":"{}","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{"arg":{}}})",
        name, to_string(event.kind), us_from_ns(event.ts_ns), pid, event.track, event.arg);
  }
}

}  // namespace

ExportConfig export_config_from_env(std::string* error) {
  ExportConfig config;
  if (const char* metrics = std::getenv("CUSAN_METRICS");
      metrics != nullptr && metrics[0] != '\0') {
    config.metrics_path = metrics;
  }
  const char* trace = std::getenv("CUSAN_TRACE");
  if (trace == nullptr || trace[0] == '\0') {
    return config;
  }
  const std::string_view value(trace);
  if (value == "0" || value == "off" || value == "none") {
    return config;
  }
  constexpr std::string_view kPrefix = "perfetto:";
  if (value.size() > kPrefix.size() && value.substr(0, kPrefix.size()) == kPrefix) {
    config.trace_enabled = true;
    config.trace_path = std::string(value.substr(kPrefix.size()));
    return config;
  }
  if (error != nullptr) {
    *error = common::format("unrecognized CUSAN_TRACE value '{}' (expected perfetto:<path>)",
                            trace);
  }
  return config;
}

std::string export_chrome_trace() {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const int rank : active_ring_ranks()) {
    EventRing& ring = ring_for_rank(rank);
    const std::vector<Event> events = ring.snapshot();
    std::set<std::uint32_t> tracks;
    for (const Event& event : events) {
      tracks.insert(event.track);
    }
    const int pid = rank_pid(rank);
    const std::string process =
        rank >= 0 ? common::format("rank {}", rank) : std::string("unattributed");
    append_metadata(out, pid, process, tracks, first);
    for (const Event& event : events) {
      append_event(out, pid, event, first);
    }
    if (ring.dropped() > 0) {
      // Make ring overflow visible in the timeline itself.
      Event note;
      note.ts_ns = events.empty() ? 0 : events.back().ts_ns;
      note.rank = rank;
      note.track = kHostTrack;
      note.kind = EventKind::kDiagnostic;
      note.arg = ring.dropped();
      std::snprintf(note.name, sizeof(note.name), "obs.ring_dropped");
      append_event(out, pid, note, first);
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& contents, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = common::format("cannot open '{}' for writing", path);
    }
    return false;
  }
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != contents.size() || !closed) {
    if (error != nullptr) {
      *error = common::format("short write to '{}'", path);
    }
    return false;
  }
  return true;
}

}  // namespace obs
