// One report stream for the whole stack. rsan races, must reports, mpisim
// deadlock declarations and faultsim fired-fault records all flow through
// emit_diagnostic() with a stable machine-readable id ("rsan.race",
// "must.type_mismatch", "mpisim.deadlock", "faultsim.fault_fired", ...),
// a severity, and the reporting rank. Every diagnostic also bumps the
// metrics counter `diag.<id>` and — when tracing is live — drops an instant
// marker into the rank's event ring so reports line up with the timeline.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace obs {

enum class Severity : std::uint8_t {
  kInfo = 0,
  kWarning,
  kError,
};

[[nodiscard]] const char* to_string(Severity severity);

struct Diagnostic {
  std::string id;       ///< stable dotted id, e.g. "rsan.race"
  Severity severity{Severity::kWarning};
  int rank{-1};
  std::string message;  ///< human-readable detail
  std::uint64_t ts_ns{0};
};

/// Receives every diagnostic as it is emitted (tools, tests).
class DiagnosticSink {
 public:
  virtual ~DiagnosticSink() = default;
  virtual void on_diagnostic(const Diagnostic& diagnostic) = 0;
};

/// One diagnostic stream: registered sinks plus a bounded retained store.
/// The process has one global hub; svc sessions own private hubs so
/// concurrent sessions' reports never interleave. The free functions below
/// route to the calling thread's current hub (global unless a Scope is
/// active), so emitting subsystems are hub-agnostic.
class DiagnosticHub {
 public:
  DiagnosticHub() = default;
  DiagnosticHub(const DiagnosticHub&) = delete;
  DiagnosticHub& operator=(const DiagnosticHub&) = delete;

  /// The calling thread's current hub (session-scoped if bound, else global).
  static DiagnosticHub& instance();
  /// The process-global hub, regardless of any thread binding.
  static DiagnosticHub& global();

  /// Bind `hub` as the calling thread's current hub (nullptr: the global).
  class Scope {
   public:
    explicit Scope(DiagnosticHub* hub);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    DiagnosticHub* previous_;
  };

  void add_sink(DiagnosticSink* sink);
  void remove_sink(DiagnosticSink* sink);
  [[nodiscard]] std::vector<Diagnostic> retained() const;
  void clear();
  [[nodiscard]] std::uint64_t dropped() const;

  /// Store + fan out one diagnostic (already stamped; metric/ring handling
  /// is the caller's business — use emit_diagnostic for the full pipeline).
  void dispatch(const Diagnostic& diagnostic);

 private:
  mutable std::mutex mutex_;
  std::vector<DiagnosticSink*> sinks_;
  std::deque<Diagnostic> retained_;
  std::uint64_t dropped_{0};
};

/// Fan a diagnostic out to all sinks of the current hub, its bounded
/// store, the `diag.<id>` metric and (if enabled) the event ring.
/// `ts_ns == 0` is stamped with the trace clock.
void emit_diagnostic(Diagnostic diagnostic);

/// Re-emit a diagnostic imported from a rank process (proc backend): fans
/// out to sinks, the store and the event ring like emit_diagnostic, but does
/// NOT bump `diag.<id>` — the child's metric deltas are merged separately,
/// so bumping here would double-count.
void reemit_imported_diagnostic(Diagnostic diagnostic);

void add_diagnostic_sink(DiagnosticSink* sink);
void remove_diagnostic_sink(DiagnosticSink* sink);

/// The retained diagnostics (bounded; oldest dropped past the cap).
[[nodiscard]] std::vector<Diagnostic> diagnostics();
void clear_diagnostics();

/// Diagnostics dropped from the bounded store so far.
[[nodiscard]] std::uint64_t dropped_diagnostics();

}  // namespace obs
