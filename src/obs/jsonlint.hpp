// Minimal recursive-descent JSON parser and Chrome trace_event schema
// checker. Exists so tests and CI can validate the exporter's output (and
// any metrics dump) without external dependencies; it is a linter, not a
// general-purpose JSON library — numbers are kept as doubles and documents
// are size-bounded only by recursion depth.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace obs::jsonlint {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is(Kind k) const { return kind == k; }
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(const std::string& key) const;
};

/// Parse a complete JSON document. Returns false with a position-bearing
/// message in `error` on malformed input (trailing garbage included).
bool parse(std::string_view text, Value* out, std::string* error);

/// Validate a Chrome trace_event JSON document: top-level object with a
/// "traceEvents" array; every element an object with a string "ph"; "X"/"i"
/// events need numeric ts/pid/tid and a string name ("X" also numeric dur);
/// "M" metadata needs process_name/thread_name with args.name. On success
/// reports the number of non-metadata events via `event_count` (optional).
bool validate_chrome_trace(std::string_view text, std::string* error,
                           std::size_t* event_count = nullptr);

/// Validate a flat metrics JSON object (string keys -> numbers).
bool validate_metrics_json(std::string_view text, std::string* error,
                           std::size_t* metric_count = nullptr);

}  // namespace obs::jsonlint
