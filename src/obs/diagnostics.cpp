#include "obs/diagnostics.hpp"

#include <cstdio>
#include <utility>

#include "common/thread_context.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace obs {

namespace {

constexpr std::size_t kMaxRetained = 4096;

// The calling thread's session-scoped hub (null: use the global one);
// propagated into spawned workers via the ThreadContext slot.
constinit thread_local DiagnosticHub* t_current_hub = nullptr;

const std::size_t kHubSlot = common::ThreadContext::register_slot(
    [] { return static_cast<void*>(t_current_hub); },
    [](void* value) { t_current_hub = static_cast<DiagnosticHub*>(value); });

}  // namespace

DiagnosticHub& DiagnosticHub::instance() {
  DiagnosticHub* current = t_current_hub;
  return current != nullptr ? *current : global();
}

DiagnosticHub& DiagnosticHub::global() {
  static DiagnosticHub hub;
  return hub;
}

DiagnosticHub::Scope::Scope(DiagnosticHub* hub) : previous_(t_current_hub) {
  t_current_hub = hub;
  (void)kHubSlot;
}

DiagnosticHub::Scope::~Scope() { t_current_hub = previous_; }

void DiagnosticHub::add_sink(DiagnosticSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(sink);
}

void DiagnosticHub::remove_sink(DiagnosticSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase(sinks_, sink);
}

std::vector<Diagnostic> DiagnosticHub::retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

void DiagnosticHub::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  retained_.clear();
  dropped_ = 0;
}

std::uint64_t DiagnosticHub::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void DiagnosticHub::dispatch(const Diagnostic& diagnostic) {
  std::vector<DiagnosticSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (retained_.size() >= kMaxRetained) {
      retained_.pop_front();
      ++dropped_;
    }
    retained_.push_back(diagnostic);
    sinks = sinks_;
  }
  for (DiagnosticSink* sink : sinks) {
    sink->on_diagnostic(diagnostic);
  }
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

void emit_impl(Diagnostic diagnostic, bool bump_metric) {
  if (diagnostic.ts_ns == 0) {
    diagnostic.ts_ns = trace_now_ns();
  }
  if (bump_metric) {
    metric("diag." + diagnostic.id).increment();
  }
  if (tracing_enabled()) {
    Event marker;
    marker.ts_ns = diagnostic.ts_ns;
    marker.rank = diagnostic.rank;
    marker.track = kHostTrack;
    marker.kind = EventKind::kDiagnostic;
    std::snprintf(marker.name, sizeof(marker.name), "%s", diagnostic.id.c_str());
    ring_for_rank(diagnostic.rank).emit(marker);
  }
  DiagnosticHub::instance().dispatch(diagnostic);
}

}  // namespace

void emit_diagnostic(Diagnostic diagnostic) { emit_impl(std::move(diagnostic), true); }

void reemit_imported_diagnostic(Diagnostic diagnostic) {
  emit_impl(std::move(diagnostic), false);
}

void add_diagnostic_sink(DiagnosticSink* sink) { DiagnosticHub::instance().add_sink(sink); }

void remove_diagnostic_sink(DiagnosticSink* sink) {
  DiagnosticHub::instance().remove_sink(sink);
}

std::vector<Diagnostic> diagnostics() { return DiagnosticHub::instance().retained(); }

void clear_diagnostics() { DiagnosticHub::instance().clear(); }

std::uint64_t dropped_diagnostics() { return DiagnosticHub::instance().dropped(); }

}  // namespace obs
