#include "obs/diagnostics.hpp"

#include <cstdio>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace obs {

namespace {

constexpr std::size_t kMaxRetained = 4096;

struct Hub {
  std::mutex mutex;
  std::vector<DiagnosticSink*> sinks;
  std::deque<Diagnostic> retained;
  std::uint64_t dropped{0};
};

Hub& hub() {
  static Hub h;
  return h;
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

void emit_impl(Diagnostic diagnostic, bool bump_metric) {
  if (diagnostic.ts_ns == 0) {
    diagnostic.ts_ns = trace_now_ns();
  }
  if (bump_metric) {
    metric("diag." + diagnostic.id).increment();
  }
  if (tracing_enabled()) {
    Event marker;
    marker.ts_ns = diagnostic.ts_ns;
    marker.rank = diagnostic.rank;
    marker.track = kHostTrack;
    marker.kind = EventKind::kDiagnostic;
    std::snprintf(marker.name, sizeof(marker.name), "%s", diagnostic.id.c_str());
    ring_for_rank(diagnostic.rank).emit(marker);
  }
  Hub& h = hub();
  std::vector<DiagnosticSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(h.mutex);
    if (h.retained.size() >= kMaxRetained) {
      h.retained.pop_front();
      ++h.dropped;
    }
    h.retained.push_back(diagnostic);
    sinks = h.sinks;
  }
  for (DiagnosticSink* sink : sinks) {
    sink->on_diagnostic(diagnostic);
  }
}

}  // namespace

void emit_diagnostic(Diagnostic diagnostic) { emit_impl(std::move(diagnostic), true); }

void reemit_imported_diagnostic(Diagnostic diagnostic) {
  emit_impl(std::move(diagnostic), false);
}

void add_diagnostic_sink(DiagnosticSink* sink) {
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mutex);
  h.sinks.push_back(sink);
}

void remove_diagnostic_sink(DiagnosticSink* sink) {
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mutex);
  std::erase(h.sinks, sink);
}

std::vector<Diagnostic> diagnostics() {
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mutex);
  return {h.retained.begin(), h.retained.end()};
}

void clear_diagnostics() {
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mutex);
  h.retained.clear();
  h.dropped = 0;
}

std::uint64_t dropped_diagnostics() {
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mutex);
  return h.dropped;
}

}  // namespace obs
