// Chrome/Perfetto trace_event JSON exporter over the per-rank event rings,
// plus the env-var plumbing that turns tracing and metrics export on:
//
//   CUSAN_TRACE=perfetto:<path>   enable span recording, write a Chrome
//                                 trace_event JSON loadable in
//                                 ui.perfetto.dev after each session
//   CUSAN_METRICS=<path>          write the metrics registry as JSON after
//                                 each session
//
// Mapping: each rank becomes a process ("rank N"; unattributed events land
// in a pseudo-process), each track becomes a named thread ("host",
// "stream N", "mpi request fiber N"). Spans export as "X" (complete)
// events, instants as "i"; both carry the event category and the u64
// payload in args.
#pragma once

#include <string>

namespace obs {

struct ExportConfig {
  bool trace_enabled{false};
  std::string trace_path;    ///< empty unless trace_enabled
  std::string metrics_path;  ///< empty = no metrics export
};

/// Parse CUSAN_TRACE / CUSAN_METRICS. `error` (optional) receives a message
/// when CUSAN_TRACE is set but not understood (the trace is then disabled).
[[nodiscard]] ExportConfig export_config_from_env(std::string* error = nullptr);

/// Render every active ring as one Chrome trace_event JSON document.
[[nodiscard]] std::string export_chrome_trace();

/// Serialize helper: write a string to a file, false + `error` on failure.
bool write_file(const std::string& path, const std::string& contents, std::string* error);

}  // namespace obs
